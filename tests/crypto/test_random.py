"""Deterministic CSPRNG tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.random import DeterministicRandom


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRandom(99)
        b = DeterministicRandom(99)
        assert [a.next_word() for _ in range(50)] == [b.next_word() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = DeterministicRandom(1)
        b = DeterministicRandom(2)
        assert [a.next_word() for _ in range(4)] != [b.next_word() for _ in range(4)]

    def test_seed_types(self):
        for seed in (0, 123456789, "label", b"bytes-seed"):
            rng = DeterministicRandom(seed)
            assert isinstance(rng.next_word(), int)

    def test_spawn_independent_streams(self):
        parent = DeterministicRandom(7)
        child_a = parent.spawn("a")
        child_b = parent.spawn("b")
        assert child_a.next_word() != child_b.next_word()
        # Spawning is deterministic in (seed, label).
        again = DeterministicRandom(7).spawn("a")
        assert DeterministicRandom(7).spawn("a").next_word() == again.next_word()


class TestDraws:
    def test_randrange_bounds(self):
        rng = DeterministicRandom(3)
        for bound in (1, 2, 3, 10, 1000, 1 << 40):
            for _ in range(20):
                assert 0 <= rng.randrange(bound) < bound

    def test_randrange_rejects_nonpositive(self):
        rng = DeterministicRandom(3)
        with pytest.raises(ValueError):
            rng.randrange(0)

    def test_randint_inclusive(self):
        rng = DeterministicRandom(3)
        values = {rng.randint(5, 7) for _ in range(200)}
        assert values == {5, 6, 7}

    def test_random_unit_interval(self):
        rng = DeterministicRandom(3)
        for _ in range(100):
            x = rng.random()
            assert 0.0 <= x < 1.0

    def test_randbits(self):
        rng = DeterministicRandom(3)
        assert rng.randbits(0) == 0
        for bits in (1, 8, 64, 100):
            assert 0 <= rng.randbits(bits) < 1 << bits

    def test_choice(self):
        rng = DeterministicRandom(3)
        population = ["a", "b", "c"]
        assert rng.choice(population) in population
        with pytest.raises(IndexError):
            rng.choice([])

    def test_token_sizes(self):
        rng = DeterministicRandom(3)
        for size in (1, 16, 17, 64):
            assert len(rng.token(size)) == size


class TestShuffleAndSample:
    @given(st.lists(st.integers(), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_shuffle_is_permutation(self, items):
        rng = DeterministicRandom(4)
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == sorted(items)

    def test_sample_distinct(self):
        rng = DeterministicRandom(4)
        picked = rng.sample(range(100), 30)
        assert len(set(picked)) == 30
        assert all(0 <= p < 100 for p in picked)

    def test_sample_rejects_oversize(self):
        rng = DeterministicRandom(4)
        with pytest.raises(ValueError):
            rng.sample([1, 2], 3)

    def test_permutation_uniform_first_element(self):
        counts = [0] * 4
        for seed in range(400):
            rng = DeterministicRandom(seed)
            counts[rng.permutation(4)[0]] += 1
        assert min(counts) > 60  # expectation 100


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = DeterministicRandom(5)
        picks = [rng.weighted_choice([0.0, 1.0, 0.0]) for _ in range(50)]
        assert set(picks) == {1}

    def test_rejects_bad_weights(self):
        rng = DeterministicRandom(5)
        with pytest.raises(ValueError):
            rng.weighted_choice([0.0, 0.0])
        with pytest.raises(ValueError):
            rng.weighted_choice([-1.0, 2.0])

    def test_rough_proportions(self):
        rng = DeterministicRandom(5)
        picks = [rng.weighted_choice([1, 3]) for _ in range(2000)]
        share = picks.count(1) / len(picks)
        assert 0.68 < share < 0.82
