"""Block cipher tests: published vectors, round trips, error handling."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.cipher import NullBlockCipher, Speck64, XTEA


class TestSpeck64:
    def test_published_test_vector(self):
        # Speck64/128 vector from the SIMON/SPECK paper (little-endian word
        # loading): key = (0x1b1a1918, 0x13121110, 0x0b0a0908, 0x03020100),
        # plaintext = (0x3b726574, 0x7475432d) -> ciphertext (0x8c6fa548, 0x454e028b).
        import struct

        key = struct.pack("<4I", 0x03020100, 0x0B0A0908, 0x13121110, 0x1B1A1918)
        plaintext = struct.pack("<2I", 0x3B726574, 0x7475432D)  # (x, y)
        cipher = Speck64(key)
        ciphertext = cipher.encrypt_block(plaintext)
        got = struct.unpack("<2I", ciphertext)
        assert got == (0x8C6FA548, 0x454E028B)

    def test_roundtrip(self):
        cipher = Speck64(bytes(range(16)))
        block = b"\x11\x22\x33\x44\x55\x66\x77\x88"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_encryption_changes_data(self):
        cipher = Speck64(bytes(range(16)))
        assert cipher.encrypt_block(b"\x00" * 8) != b"\x00" * 8

    def test_different_keys_differ(self):
        a = Speck64(bytes(range(16)))
        b = Speck64(bytes(range(1, 17)))
        block = b"same-blk"
        assert a.encrypt_block(block) != b.encrypt_block(block)

    def test_rejects_bad_key_size(self):
        with pytest.raises(ValueError):
            Speck64(b"short")

    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=16, max_size=16))
    def test_roundtrip_property(self, block, key):
        cipher = Speck64(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestXTEA:
    def test_roundtrip(self):
        cipher = XTEA(bytes(range(16)))
        block = b"ABCDEFGH"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_known_vector(self):
        # XTEA with an all-zero key encrypting an all-zero block (64 rounds)
        # is a widely reproduced reference value.
        cipher = XTEA(b"\x00" * 16)
        assert cipher.encrypt_block(b"\x00" * 8).hex() == "dee9d4d8f7131ed9"

    def test_rejects_bad_key_size(self):
        with pytest.raises(ValueError):
            XTEA(b"\x00" * 8)

    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=16, max_size=16))
    def test_roundtrip_property(self, block, key):
        cipher = XTEA(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_distinct_blocks_distinct_ciphertexts(self):
        cipher = XTEA(bytes(range(16)))
        assert cipher.encrypt_block(b"block-00") != cipher.encrypt_block(b"block-01")


class TestNullBlockCipher:
    def test_identity(self):
        cipher = NullBlockCipher()
        assert cipher.encrypt_block(b"12345678") == b"12345678"
        assert cipher.decrypt_block(b"12345678") == b"12345678"
