"""Permutation tests: bijectivity, inverses, refresh behavior."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.permutation import FeistelPermutation, RandomPermutation
from repro.crypto.prf import Blake2Prf
from repro.crypto.random import DeterministicRandom


class TestFeistelPermutation:
    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_bijection_property(self, domain):
        perm = FeistelPermutation(Blake2Prf(b"k"), domain)
        outputs = [perm.forward(x) for x in range(domain)]
        assert sorted(outputs) == list(range(domain))

    def test_inverse(self):
        perm = FeistelPermutation(Blake2Prf(b"k"), 321)
        for x in range(321):
            assert perm.inverse(perm.forward(x)) == x

    def test_forward_of_inverse(self):
        perm = FeistelPermutation(Blake2Prf(b"k"), 97)
        for y in range(97):
            assert perm.forward(perm.inverse(y)) == y

    def test_keys_give_different_permutations(self):
        a = FeistelPermutation.from_key(b"key-a", 256)
        b = FeistelPermutation.from_key(b"key-b", 256)
        assert [a.forward(x) for x in range(256)] != [b.forward(x) for x in range(256)]

    def test_domain_bounds_enforced(self):
        perm = FeistelPermutation(Blake2Prf(b"k"), 10)
        with pytest.raises(ValueError):
            perm.forward(10)
        with pytest.raises(ValueError):
            perm.inverse(-1)

    def test_rejects_tiny_round_count(self):
        with pytest.raises(ValueError):
            FeistelPermutation(Blake2Prf(b"k"), 16, rounds=2)

    def test_domain_one(self):
        perm = FeistelPermutation(Blake2Prf(b"k"), 1)
        assert perm.forward(0) == 0


class TestRandomPermutation:
    def test_bijection(self):
        perm = RandomPermutation(100, DeterministicRandom(5))
        slots = [perm.forward(x) for x in range(100)]
        assert sorted(slots) == list(range(100))

    def test_inverse_consistency(self):
        perm = RandomPermutation(64, DeterministicRandom(5))
        for x in range(64):
            assert perm.inverse(perm.forward(x)) == x

    def test_refresh_changes_mapping(self):
        perm = RandomPermutation(128, DeterministicRandom(5))
        before = list(perm.as_sequence())
        perm.refresh()
        after = list(perm.as_sequence())
        assert before != after
        assert sorted(after) == list(range(128))

    def test_swap_slots(self):
        perm = RandomPermutation(16, DeterministicRandom(5))
        a, b = perm.forward(3), perm.forward(7)
        perm.swap_slots(a, b)
        assert perm.forward(3) == b
        assert perm.forward(7) == a
        assert perm.inverse(a) == 7
        assert perm.inverse(b) == 3

    def test_assign_bulk(self):
        perm = RandomPermutation(8, DeterministicRandom(5))
        perm.assign((x, (x + 1) % 8) for x in range(8))
        for x in range(8):
            assert perm.forward(x) == (x + 1) % 8
            assert perm.inverse((x + 1) % 8) == x

    def test_uniformity_over_seeds(self):
        # Element 0's slot over many fresh permutations should spread out.
        counts = [0] * 8
        for seed in range(400):
            perm = RandomPermutation(8, DeterministicRandom(seed))
            counts[perm.forward(0)] += 1
        assert min(counts) > 20  # expectation 50 per slot

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            RandomPermutation(0, DeterministicRandom(1))
