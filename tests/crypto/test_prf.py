"""PRF tests: determinism, domain separation, distribution sanity."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.prf import Blake2Prf, SpeckCbcMacPrf, derive_key


@pytest.fixture(params=[Blake2Prf, SpeckCbcMacPrf])
def prf(request):
    return request.param(b"prf-test-key")


class TestPrfBasics:
    def test_deterministic(self, prf):
        assert prf.value(b"hello") == prf.value(b"hello")

    def test_different_inputs_differ(self, prf):
        assert prf.value(b"hello") != prf.value(b"world")

    def test_different_keys_differ(self):
        for cls in (Blake2Prf, SpeckCbcMacPrf):
            a = cls(b"key-a")
            b = cls(b"key-b")
            assert a.value(b"same") != b.value(b"same")

    def test_64_bit_output(self, prf):
        for data in (b"", b"x", b"y" * 100):
            assert 0 <= prf.value(data) < 1 << 64

    def test_int_input_with_domain_tags(self, prf):
        assert prf.value_int(5, domain_tag=0) != prf.value_int(5, domain_tag=1)

    def test_bounded(self, prf):
        for bound in (1, 2, 7, 1000):
            for x in range(20):
                assert 0 <= prf.bounded_int(x, bound) < bound

    def test_bounded_rejects_bad_bound(self, prf):
        with pytest.raises(ValueError):
            prf.bounded_int(1, 0)

    def test_length_extension_resistance_shape(self, prf):
        # Messages that are prefixes of each other must not collide --
        # guards the 10*-padding / length-prefix construction.
        assert prf.value(b"ab") != prf.value(b"ab\x00")
        assert prf.value(b"") != prf.value(b"\x00")

    @given(st.binary(max_size=64))
    def test_blake_speck_disagree_but_both_deterministic(self, data):
        blake = Blake2Prf(b"k")
        speck = SpeckCbcMacPrf(b"k")
        assert blake.value(data) == blake.value(data)
        assert speck.value(data) == speck.value(data)


class TestDistribution:
    def test_bounded_outputs_cover_range(self, prf):
        # 512 samples into 8 buckets: every bucket should be hit.
        buckets = {prf.bounded_int(i, 8) for i in range(512)}
        assert buckets == set(range(8))

    def test_low_bit_balance(self, prf):
        ones = sum(prf.value_int(i) & 1 for i in range(2000))
        assert 800 < ones < 1200  # ~6 sigma corridor around 1000


class TestDeriveKey:
    def test_labels_separate(self):
        master = b"master-key"
        assert derive_key(master, "a") != derive_key(master, "b")

    def test_deterministic(self):
        assert derive_key(b"m", "label") == derive_key(b"m", "label")

    def test_rejects_empty_master(self):
        with pytest.raises(ValueError):
            derive_key(b"", "label")
