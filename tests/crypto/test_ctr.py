"""CTR-mode / stream cipher tests."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.cipher import Speck64, XTEA
from repro.crypto.ctr import CtrCipher, NullCipher, StreamCipher


@pytest.fixture(params=["speck-ctr", "xtea-ctr", "blake2-stream"])
def record_cipher(request):
    if request.param == "speck-ctr":
        return CtrCipher(Speck64(bytes(range(16))))
    if request.param == "xtea-ctr":
        return CtrCipher(XTEA(bytes(range(16))))
    return StreamCipher(b"stream-key")


class TestRecordCiphers:
    def test_roundtrip(self, record_cipher):
        data = b"the quick brown fox jumps over the lazy dog"
        assert record_cipher.decrypt(5, record_cipher.encrypt(5, data)) == data

    def test_length_preserving(self, record_cipher):
        for size in (0, 1, 7, 8, 9, 63, 64, 65, 1000):
            data = bytes(range(256)) * 4
            ct = record_cipher.encrypt(1, data[:size])
            assert len(ct) == size

    def test_nonce_freshness(self, record_cipher):
        # Same plaintext under different nonces must differ -- re-encryption
        # on every ORAM write-back relies on this.
        data = b"identical-plaintext-0"
        assert record_cipher.encrypt(1, data) != record_cipher.encrypt(2, data)

    def test_wrong_nonce_garbles(self, record_cipher):
        data = b"some secret payload"
        assert record_cipher.decrypt(9, record_cipher.encrypt(3, data)) != data

    def test_deterministic(self, record_cipher):
        data = b"replay me"
        assert record_cipher.encrypt(7, data) == record_cipher.encrypt(7, data)

    @given(st.integers(min_value=0, max_value=2**62), st.binary(max_size=200))
    def test_roundtrip_property(self, nonce, data):
        cipher = StreamCipher(b"prop-key")
        assert cipher.decrypt(nonce, cipher.encrypt(nonce, data)) == data


class TestVectorizedKeystream:
    """The word-wise XOR fast paths must equal a byte-by-byte reference."""

    @staticmethod
    def reference_xor(data: bytes, stream: bytes) -> bytes:
        return bytes(p ^ s for p, s in zip(data, stream))

    @pytest.mark.parametrize("size", [0, 1, 7, 8, 24, 63, 64, 65, 200])
    def test_stream_cipher_matches_reference(self, size):
        cipher = StreamCipher(b"vec-key")
        data = bytes(range(256))[:size] if size <= 256 else bytes(size)
        stream = cipher.keystream(9, size)[:size] if size else b""
        assert cipher.encrypt(9, data) == self.reference_xor(data, stream)

    @pytest.mark.parametrize("size", [0, 1, 8, 24, 65])
    def test_ctr_cipher_matches_reference(self, size):
        cipher = CtrCipher(Speck64(bytes(range(16))))
        data = bytes((i * 7) % 256 for i in range(size))
        stream = cipher.keystream(5, size)[:size] if size else b""
        assert cipher.encrypt(5, data) == self.reference_xor(data, stream)

    def test_keystream_block_is_keystream_prefix(self):
        cipher = StreamCipher(b"vec-key")
        assert cipher.keystream_block(13) == cipher.keystream(13, 64)
        assert cipher.keystream_block(13)[:24] == cipher.keystream(13, 24)[:24]

    def test_xor_bytes_helper(self):
        from repro.crypto.ctr import xor_bytes

        data, stream = b"hello-world", bytes(range(200, 216))
        assert xor_bytes(data, stream) == self.reference_xor(data, stream)
        assert xor_bytes(b"", stream) == b""
        assert xor_bytes(memoryview(data), stream) == self.reference_xor(data, stream)


class TestCtrConstruction:
    def test_rejects_non_64bit_cipher(self):
        class Wide:
            block_bytes = 16

        with pytest.raises(ValueError):
            CtrCipher(Wide())

    def test_stream_rejects_empty_key(self):
        with pytest.raises(ValueError):
            StreamCipher(b"")


class TestNullCipher:
    def test_identity(self):
        cipher = NullCipher()
        assert cipher.encrypt(1, b"abc") == b"abc"
        assert cipher.decrypt(99, b"abc") == b"abc"
