"""BlockStore tests: data integrity, timing semantics, counters, traces."""

import pytest

from repro.sim.clock import SimClock
from repro.storage.backend import BlockStore
from repro.storage.device import HDDModel
from repro.storage.trace import TraceRecorder


def make_store(slots=16, slot_bytes=8, modeled=None, trace=None):
    device = HDDModel(seek_us=100.0, read_mb_per_s=100.0, write_mb_per_s=50.0)
    return BlockStore(
        name="t",
        tier="storage",
        slots=slots,
        slot_bytes=slot_bytes,
        device=device,
        modeled_slot_bytes=modeled,
        trace=trace,
        clock=SimClock(),
    )


class TestDataPath:
    def test_write_read_roundtrip(self):
        store = make_store()
        store.write_slot(3, b"ABCDEFGH")
        data, _ = store.read_slot(3)
        assert data == b"ABCDEFGH"

    def test_slots_start_zeroed(self):
        store = make_store()
        data, _ = store.read_slot(0)
        assert data == b"\x00" * 8

    def test_record_size_enforced(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.write_slot(0, b"short")

    def test_slot_bounds(self):
        store = make_store(slots=4)
        with pytest.raises(IndexError):
            store.read_slot(4)
        with pytest.raises(IndexError):
            store.write_slot(-1, b"X" * 8)

    def test_runs_roundtrip(self):
        store = make_store()
        records = [bytes([i]) * 8 for i in range(5)]
        store.write_run(2, records)
        got, _ = store.read_run(2, 5)
        assert got == records

    def test_run_bounds(self):
        store = make_store(slots=4)
        with pytest.raises(IndexError):
            store.read_run(2, 3)
        with pytest.raises(ValueError):
            store.read_run(0, 0)

    def test_peek_poke_do_not_charge(self):
        store = make_store()
        store.poke_slot(1, b"12345678")
        assert store.peek_slot(1) == b"12345678"
        assert store.counters.reads == 0
        assert store.counters.writes == 0
        assert store.counters.busy_us == 0.0


class TestBulkDataPlane:
    def test_peek_run_zero_copy_view(self):
        store = make_store()
        store.write_run(2, [bytes([i]) * 8 for i in range(4)])
        view = store.peek_run(2, 4)
        assert isinstance(view, memoryview)
        assert bytes(view[:8]) == b"\x00" * 8
        assert bytes(view[8:16]) == b"\x01" * 8

    def test_peek_poke_run_do_not_charge(self):
        store = make_store()
        store.poke_run(1, b"A" * 8 + b"B" * 8)
        assert bytes(store.peek_run(1, 2)) == b"A" * 8 + b"B" * 8
        assert store.counters.reads == 0
        assert store.counters.writes == 0
        assert store.counters.busy_us == 0.0

    def test_poke_run_rejects_partial_records(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.poke_run(0, b"xyz")
        with pytest.raises(ValueError):
            store.poke_run(0, b"")

    def test_read_run_view_matches_read_run(self):
        store = make_store(trace=TraceRecorder())
        records = [bytes([i + 1]) * 8 for i in range(4)]
        store.write_run(3, records)
        copied, copied_us = store.read_run(3, 4)
        store.reset_stream()
        view, view_us = store.read_run_view(3, 4)
        assert bytes(view) == b"".join(copied)
        assert view_us == pytest.approx(copied_us)
        # Identical accounting: same counters and same trace event shape.
        reads = [e for e in store.trace.events if e.op == "read"]
        assert [e.label for e in reads] == ["run:4", "run:4"]
        assert store.counters.reads == 8

    def test_write_run_flat_buffer_equivalent(self):
        list_store = make_store()
        flat_store = make_store()
        records = [bytes([i]) * 8 for i in range(5)]
        list_us = list_store.write_run(1, records)
        flat_us = flat_store.write_run(1, b"".join(records))
        assert flat_us == pytest.approx(list_us)
        assert flat_store.peek_run(1, 5) == list_store.peek_run(1, 5)
        assert flat_store.counters.writes == list_store.counters.writes == 5

    def test_write_run_flat_buffer_rejects_partial_records(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.write_run(0, b"not-a-multiple")


class TestTiming:
    def test_random_then_sequential_read(self):
        store = make_store(slot_bytes=1024)
        _, first = store.read_slot(5)
        _, second = store.read_slot(6)  # continues the stream
        _, third = store.read_slot(9)  # jumps
        assert first > second
        assert third == pytest.approx(first)

    def test_op_change_breaks_stream(self):
        store = make_store(slot_bytes=1024)
        store.read_slot(5)
        duration = store.write_slot(6, b"x" * 1024)
        # A write after a read at the next slot still pays positioning.
        assert duration > store.device.transfer_us(1024, write=True)

    def test_reset_stream(self):
        store = make_store(slot_bytes=1024)
        store.read_slot(5)
        store.reset_stream()
        _, duration = store.read_slot(6)
        assert duration == pytest.approx(store.device.access_us(1024))

    def test_run_cheaper_than_slot_loop(self):
        store = make_store(slots=64, slot_bytes=1024)
        _, run_time = store.read_run(0, 32)
        store.reset_stream()
        loop_time = 0.0
        for slot in range(32, 64):
            store.reset_stream()  # force worst-case scattered access
            _, duration = store.read_slot(slot)
            loop_time += duration
        assert run_time < loop_time / 5

    def test_modeled_size_decoupled(self):
        store = make_store(slot_bytes=8, modeled=1024)
        _, duration = store.read_slot(0)
        assert duration == pytest.approx(store.device.access_us(1024))
        assert store.counters.bytes_read == 1024


class TestCounters:
    def test_counts_accumulate(self):
        store = make_store()
        store.read_slot(0)
        store.write_slot(1, b"y" * 8)
        store.read_run(0, 4)
        assert store.counters.reads == 5
        assert store.counters.writes == 1

    def test_snapshot_delta(self):
        store = make_store()
        before = store.snapshot()
        store.read_slot(0)
        delta = store.snapshot().delta(before)
        assert delta.reads == 1
        assert delta.busy_us > 0

    def test_capacity_bytes_uses_modeled(self):
        store = make_store(slots=4, slot_bytes=8, modeled=1024)
        assert store.capacity_bytes == 4096


class TestTraceHook:
    def test_events_recorded(self):
        trace = TraceRecorder()
        store = make_store(trace=trace)
        store.read_slot(3)
        store.write_slot(4, b"z" * 8)
        store.read_run(0, 2)
        ops = [(e.op, e.slot) for e in trace.events]
        assert ops == [("read", 3), ("write", 4), ("read", 0)]
        assert trace.events[2].label == "run:2"

    def test_capacity_zero_drops(self):
        trace = TraceRecorder(capacity=0)
        store = make_store(trace=trace)
        store.read_slot(0)
        assert len(trace) == 0
        assert trace.dropped == 1
