"""Unit tests for the disk-backed slab store."""

import json

import pytest

from repro.storage.backend import BlockStore
from repro.storage.device import hdd_paper
from repro.storage.durable import DurableBlockStore, SlabError, slab_meta_path


def make_durable(path, slots=16, slot_bytes=8, **kwargs):
    return DurableBlockStore(
        path,
        name="storage",
        tier="storage",
        slots=slots,
        slot_bytes=slot_bytes,
        device=hdd_paper(),
        **kwargs,
    )


class TestDurableBlockStore:
    def test_fresh_slab_starts_zeroed(self, tmp_path):
        store = make_durable(tmp_path / "a.slab")
        assert store.peek_slot(0) == b"\x00" * 8
        assert (tmp_path / "a.slab").stat().st_size == 16 * 8
        store.close()

    def test_contents_survive_reopen(self, tmp_path):
        path = tmp_path / "a.slab"
        store = make_durable(path)
        store.write_slot(3, b"ABCDEFGH")
        store.poke_run(8, b"x" * 8 * 4)
        store.close()

        reopened = make_durable(path)
        assert reopened.peek_slot(3) == b"ABCDEFGH"
        assert bytes(reopened.peek_run(8, 4)) == b"x" * 8 * 4
        # Counters are process state, not slab state: fresh after reopen.
        assert reopened.counters.writes == 0
        reopened.close()

    def test_geometry_mismatch_rejected(self, tmp_path):
        path = tmp_path / "a.slab"
        make_durable(path).close()
        with pytest.raises(SlabError, match="slots"):
            make_durable(path, slots=32)

    def test_missing_meta_rejected(self, tmp_path):
        path = tmp_path / "a.slab"
        make_durable(path).close()
        slab_meta_path(path).unlink()
        with pytest.raises(SlabError, match="sidecar"):
            make_durable(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "a.slab"
        make_durable(path).close()
        meta = json.loads(slab_meta_path(path).read_text())
        meta["version"] = 999
        slab_meta_path(path).write_text(json.dumps(meta))
        with pytest.raises(SlabError, match="version"):
            make_durable(path)

    def test_reset_discards_existing_contents(self, tmp_path):
        path = tmp_path / "a.slab"
        store = make_durable(path)
        store.write_slot(0, b"ABCDEFGH")
        store.close()
        fresh = make_durable(path, reset=True)
        assert fresh.peek_slot(0) == b"\x00" * 8
        fresh.close()

    def test_close_is_idempotent_and_delete_removes_files(self, tmp_path):
        path = tmp_path / "a.slab"
        store = make_durable(path)
        store.close()
        store.close()
        store.delete()
        assert not path.exists()
        assert not slab_meta_path(path).exists()

    def test_bit_identical_to_memory_store(self, tmp_path):
        """Same ops on both backings: same durations, counters and bytes."""
        memory = BlockStore(
            name="storage", tier="storage", slots=16, slot_bytes=8, device=hdd_paper()
        )
        durable = make_durable(tmp_path / "a.slab")
        ops = [
            ("write_slot", (2, b"ABCDEFGH")),
            ("read_slot", (2,)),
            ("read_slot", (3,)),  # sequential continuation
            ("write_run", (4, b"y" * 8 * 3)),
            ("read_run", (4, 3)),
        ]
        for op, args in ops:
            got_m = getattr(memory, op)(*args)
            got_d = getattr(durable, op)(*args)
            assert got_m == got_d, op
        assert memory.counters == durable.counters
        assert memory.export_data() == durable.export_data()
        durable.close()

    def test_import_data_rolls_slab_back(self, tmp_path):
        store = make_durable(tmp_path / "a.slab")
        checkpointed = store.export_data()
        store.write_slot(0, b"POSTCKPT")
        store.import_data(checkpointed)
        assert store.peek_slot(0) == b"\x00" * 8
        store.close()


class TestHierarchyBackend:
    def test_file_backend_requires_path(self):
        from repro.storage.hierarchy import StorageHierarchy

        with pytest.raises(ValueError, match="storage_path"):
            StorageHierarchy(
                memory_slots=4, storage_slots=4, slot_bytes=8, storage_backend="file"
            )

    def test_unknown_backend_rejected(self):
        from repro.storage.hierarchy import StorageHierarchy

        with pytest.raises(ValueError, match="storage backend"):
            StorageHierarchy(
                memory_slots=4, storage_slots=4, slot_bytes=8, storage_backend="tape"
            )

    def test_file_backend_mounts_durable_store(self, tmp_path):
        from repro.storage.durable import DurableBlockStore as Durable
        from repro.storage.hierarchy import StorageHierarchy

        hierarchy = StorageHierarchy(
            memory_slots=4,
            storage_slots=4,
            slot_bytes=8,
            storage_backend="file",
            storage_path=tmp_path / "h.slab",
        )
        assert isinstance(hierarchy.storage, Durable)
        assert hierarchy.describe()["storage_backend"] == "file"
        hierarchy.close()
        assert hierarchy.storage.closed
