"""Device timing model tests: exact arithmetic and profile calibration."""

import pytest

from repro.storage.device import (
    DRAMModel,
    HDDModel,
    SSDModel,
    ddr4_2133,
    hdd_paper,
    hdd_realistic,
    ssd_sata,
)

MB = 1024 * 1024


class TestTimingMath:
    def test_random_access_pays_seek(self):
        hdd = HDDModel(seek_us=100.0, read_mb_per_s=100.0, write_mb_per_s=50.0)
        duration = hdd.access_us(MB, write=False, sequential=False)
        assert duration == pytest.approx(100.0 + 10_000.0)

    def test_sequential_access_skips_seek(self):
        hdd = HDDModel(seek_us=100.0, read_mb_per_s=100.0, write_mb_per_s=50.0)
        assert hdd.access_us(MB, sequential=True) == pytest.approx(10_000.0)

    def test_write_asymmetry(self):
        hdd = HDDModel(seek_us=0.0, read_mb_per_s=100.0, write_mb_per_s=50.0)
        read = hdd.access_us(MB, write=False)
        write = hdd.access_us(MB, write=True)
        assert write == pytest.approx(2 * read)

    def test_run_is_one_seek_plus_stream(self):
        hdd = HDDModel(seek_us=100.0, read_mb_per_s=100.0, write_mb_per_s=50.0)
        assert hdd.run_us(10 * MB) == pytest.approx(100.0 + 100_000.0)

    def test_zero_bytes(self):
        hdd = hdd_paper()
        assert hdd.transfer_us(0, write=False) == 0.0
        assert hdd.access_us(0, sequential=True) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            hdd_paper().transfer_us(-1, write=False)


class TestProfiles:
    def test_paper_hdd_random_1kb_read(self):
        # The calibration target: ~75 us for a 1 KB random read (the paper
        # measured 77 us on the 64 MB set).
        hdd = hdd_paper()
        duration = hdd.access_us(1024, write=False)
        assert 70 < duration < 80

    def test_paper_hdd_path_access_cost(self):
        # 4 bucket reads + 4 bucket writes of 4 KB should land near the
        # paper's measured 1032 us per baseline access.
        hdd = hdd_paper()
        cost = 4 * hdd.access_us(4096, write=False) + 4 * hdd.access_us(4096, write=True)
        assert 850 < cost < 1150

    def test_paper_hdd_throughputs_match_table_5_2(self):
        hdd = hdd_paper()
        assert hdd.read_mb_per_s == pytest.approx(102.7)
        assert hdd.write_mb_per_s == pytest.approx(55.2)

    def test_realistic_hdd_much_slower_random(self):
        assert hdd_realistic().access_us(1024) > 50 * hdd_paper().access_us(1024)

    def test_ssd_faster_than_hdd(self):
        assert ssd_sata().access_us(4096) < hdd_paper().access_us(4096)

    def test_dram_orders_of_magnitude_faster(self):
        dram = ddr4_2133()
        assert dram.access_us(1024) < hdd_paper().access_us(1024) / 100

    def test_sequential_speedup_band(self):
        # The paper cites sequential HDD access as 10-20x faster than
        # random page reads; check the profile reproduces that for 1-4 KB.
        hdd = hdd_paper()
        for size in (1024, 4096):
            ratio = hdd.access_us(size, sequential=False) / hdd.access_us(
                size, sequential=True
            )
            assert ratio > 2.5  # dominated by positioning for small pages

    def test_models_are_frozen(self):
        hdd = hdd_paper()
        with pytest.raises(AttributeError):
            hdd.read_mb_per_s = 1.0


class TestModelClasses:
    def test_ssd_write_latency_higher(self):
        ssd = SSDModel()
        assert ssd.write_overhead_us > ssd.read_overhead_us

    def test_dram_bandwidth_scaling(self):
        slow = DRAMModel(bandwidth_gb_per_s=1.0)
        fast = DRAMModel(bandwidth_gb_per_s=10.0)
        assert slow.transfer_us(MB, False) == pytest.approx(
            10 * fast.transfer_us(MB, False)
        )
