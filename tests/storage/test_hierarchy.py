"""StorageHierarchy construction and description tests."""

from repro.storage.hierarchy import StorageHierarchy
from repro.storage.device import hdd_realistic, ssd_sata


class TestHierarchy:
    def test_default_devices(self):
        h = StorageHierarchy(memory_slots=8, storage_slots=32, slot_bytes=16)
        assert h.memory.device.name == "ddr4-2133"
        assert h.storage.device.name == "hdd-paper"

    def test_shared_clock_and_trace(self):
        h = StorageHierarchy(memory_slots=8, storage_slots=32, slot_bytes=16)
        assert h.memory.clock is h.clock
        assert h.storage.clock is h.clock
        assert h.memory.trace is h.storage.trace

    def test_custom_devices(self):
        h = StorageHierarchy(
            memory_slots=8,
            storage_slots=32,
            slot_bytes=16,
            storage_device=ssd_sata(),
            memory_device=hdd_realistic(),
        )
        assert h.storage.device.name == "ssd-sata"

    def test_describe_reports_modeled_capacity(self):
        h = StorageHierarchy(
            memory_slots=8, storage_slots=32, slot_bytes=16, modeled_slot_bytes=1024
        )
        info = h.describe()
        assert info["memory_capacity_bytes"] == 8 * 1024
        assert info["storage_capacity_bytes"] == 32 * 1024
        assert info["modeled_block_bytes"] == 1024

    def test_mark_emits_trace_marker(self):
        h = StorageHierarchy(memory_slots=8, storage_slots=32, slot_bytes=16)
        h.clock.advance(12.5)
        h.mark("period-start")
        marker = h.trace.markers("period-start")[0]
        assert marker.time_us == 12.5
