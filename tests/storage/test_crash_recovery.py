"""Crash-point sweep: snapshot + kill + restore at many points.

The durability tier's core guarantee: restoring a checkpoint makes the
stack bit-identical, *going forward*, to an uninterrupted run.  This
sweep drives the quick workload on a disk-backed H-ORAM, snapshots at
every period boundary and at random request indices, kills the instance
(after letting it run on so post-checkpoint state demonstrably diverges
from the checkpoint), recovers from the on-disk checkpoint, finishes the
workload, and asserts the served log, final logical state, metrics and
simulated clock all match the uninterrupted golden run.
"""

import pytest

from repro.core.checkpoint import (
    CheckpointError,
    load_checkpoint,
    recover,
    save_checkpoint,
)
from repro.core.horam import build_horam
from repro.crypto.random import DeterministicRandom
from repro.oram.base import OpKind
from repro.storage.faults import CrashFault, FaultInjector, FaultPlan
from repro.workload.generators import hotspot

N_BLOCKS = 256
MEM_BLOCKS = 64
REQUESTS = 100
RANDOM_POINTS = 4


def quick_workload():
    rng = DeterministicRandom("crash-sweep")
    return list(hotspot(N_BLOCKS, REQUESTS, rng, hot_blocks=20, write_ratio=0.3))


def build(tmp_path, label):
    return build_horam(
        n_blocks=N_BLOCKS,
        mem_tree_blocks=MEM_BLOCKS,
        seed=17,
        storage_backend="file",
        storage_path=tmp_path / f"{label}.slab",
    )


def drive(oram, requests):
    results = []
    for request in requests:
        entry = oram.submit(request)
        oram.drain()
        results.append(entry.result)
    return results


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """Uninterrupted run + the period-boundary request indices."""
    tmp_path = tmp_path_factory.mktemp("golden")
    requests = quick_workload()
    oram = build(tmp_path, "golden")
    boundaries = []
    results = []
    for index, request in enumerate(requests):
        before = oram.period_index
        entry = oram.submit(request)
        oram.drain()
        results.append(entry.result)
        if oram.period_index != before:
            boundaries.append(index + 1)  # snapshot *after* this request
    reference = {}
    for request in requests:
        if request.op is OpKind.WRITE:
            reference[request.addr] = oram.codec.pad(request.data)
    state = {
        "results": results,
        "served_log": list(oram.served_log),
        "metrics": oram.metrics.to_dict(),
        "clock_us": oram.hierarchy.clock.now_us,
        "boundaries": boundaries,
        "final_state": {
            addr: oram.read(addr) for addr in sorted(reference)
        },
        "reference": reference,
    }
    oram.close()
    return requests, state


def snapshot_points(boundaries):
    rng = DeterministicRandom("sweep-points")
    points = set(b for b in boundaries if 0 < b < REQUESTS)
    while len(points) < len(boundaries) + RANDOM_POINTS:
        points.add(1 + rng.randrange(REQUESTS - 1))
    return sorted(points)


class TestCrashPointSweep:
    def test_golden_run_crosses_periods(self, golden):
        _, state = golden
        assert len(state["boundaries"]) >= 2, "workload must span several periods"

    def test_sweep_restores_bit_identical(self, golden, tmp_path):
        requests, state = golden
        points = snapshot_points(state["boundaries"])
        assert len(points) >= len(state["boundaries"]) + RANDOM_POINTS - 1
        for point in points:
            victim = build(tmp_path, f"victim-{point}")
            head = drive(victim, requests[:point])
            ckpt = tmp_path / f"ckpt-{point}"
            save_checkpoint(victim, ckpt)

            # Keep running past the checkpoint, then die on a CrashFault --
            # the recovery must roll all of this back.  (Short tails may
            # finish before op 25; rollback is asserted either way.)
            injector = FaultInjector(FaultPlan(crash_at_op=25))
            injector.attach(victim.hierarchy.storage)
            try:
                drive(victim, requests[point:])
            except CrashFault:
                pass
            victim.close()

            restored = recover(ckpt)
            tail = drive(restored, requests[point:])
            assert head + tail == state["results"], f"results diverge at {point}"
            assert list(restored.served_log) == state["served_log"], point
            assert restored.metrics.to_dict() == state["metrics"], point
            assert restored.hierarchy.clock.now_us == state["clock_us"], point
            # Final logical state: every written address reads back the
            # golden value on the restored instance.
            for addr, want in state["final_state"].items():
                assert restored.read(addr) == want, (point, addr)
            restored.close()

    def test_corrupted_checkpoint_blob_is_rejected(self, golden, tmp_path):
        requests, _ = golden
        victim = build(tmp_path, "corrupt")
        drive(victim, requests[:20])
        ckpt = tmp_path / "ckpt-corrupt"
        save_checkpoint(victim, ckpt)
        victim.close()

        blob = next(ckpt.glob("*.bin"))
        raw = bytearray(blob.read_bytes())
        raw[0] ^= 0xFF
        blob.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="SHA-256"):
            load_checkpoint(ckpt)

    def test_checkpoint_validates_version(self, golden, tmp_path):
        import json

        requests, _ = golden
        victim = build(tmp_path, "version")
        drive(victim, requests[:10])
        ckpt = tmp_path / "ckpt-version"
        save_checkpoint(victim, ckpt)
        victim.close()

        manifest = ckpt / "checkpoint.json"
        data = json.loads(manifest.read_text())
        data["version"] = 999
        manifest.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(ckpt)
