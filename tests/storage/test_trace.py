"""TraceRecorder tests: filters, markers, epoch splitting."""

from repro.storage.trace import TraceEvent, TraceRecorder


def ev(op, tier, slot, label=""):
    return TraceEvent(op=op, tier=tier, slot=slot, size=8, time_us=0.0, label=label)


class TestRecording:
    def test_append_and_len(self):
        trace = TraceRecorder()
        trace.record(ev("read", "storage", 1))
        trace.record(ev("write", "memory", 2))
        assert len(trace) == 2

    def test_markers_flagged(self):
        trace = TraceRecorder()
        trace.mark("shuffle-start", 1.0)
        assert trace.events[0].is_marker
        assert trace.markers("shuffle-start")[0].label == "shuffle-start"

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(ev("read", "storage", 1))
        trace.clear()
        assert len(trace) == 0


class TestQueries:
    def make(self):
        trace = TraceRecorder()
        trace.record(ev("read", "storage", 1))
        trace.record(ev("write", "storage", 2))
        trace.record(ev("read", "memory", 3))
        trace.mark("shuffle-end", 5.0)
        trace.record(ev("read", "storage", 4))
        return trace

    def test_tier_filters(self):
        trace = self.make()
        assert [e.slot for e in trace.storage_reads()] == [1, 4]
        assert [e.slot for e in trace.storage_writes()] == [2]
        assert [e.slot for e in trace.memory_accesses()] == [3]

    def test_split_by_marker(self):
        trace = self.make()
        segments = trace.split_by_marker("shuffle-end")
        assert len(segments) == 2
        assert [e.slot for e in segments[0]] == [1, 2, 3]
        assert [e.slot for e in segments[1]] == [4]

    def test_slots_helper(self):
        trace = self.make()
        assert TraceRecorder.slots(trace.events) == [1, 2, 3, 4]

    def test_generic_filter(self):
        trace = self.make()
        found = trace.filter(lambda e: e.slot == 2)
        assert len(found) == 1 and found[0].op == "write"
