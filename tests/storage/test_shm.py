"""Unit tests for the shared-memory slab store."""

import pytest

from repro.storage.backend import BlockStore
from repro.storage.device import hdd_paper
from repro.storage.faults import FaultInjector, FaultPlan
from repro.storage.shm import (
    SegmentError,
    SharedMemoryBlockStore,
    active_segments,
    make_segment_name,
    unlink_segment,
)


def make_shm(segment, slots=16, slot_bytes=8, **kwargs):
    return SharedMemoryBlockStore(
        segment,
        name="storage",
        tier="storage",
        slots=slots,
        slot_bytes=slot_bytes,
        device=hdd_paper(),
        **kwargs,
    )


@pytest.fixture
def segment():
    name = make_segment_name("test")
    yield name
    unlink_segment(name)  # belt and braces: never leak past a failed test


class TestSharedMemoryBlockStore:
    def test_fresh_segment_starts_zeroed(self, segment):
        store = make_shm(segment)
        assert store.peek_slot(0) == b"\x00" * 8
        assert segment in active_segments()
        store.close()

    def test_close_unlinks_segment_and_is_idempotent(self, segment):
        store = make_shm(segment)
        store.close()
        assert segment not in active_segments()
        store.close()
        store.delete()

    def test_use_after_close_fails_loudly(self, segment):
        store = make_shm(segment)
        store.close()
        with pytest.raises(TypeError):
            store.peek_slot(0)

    def test_reattach_preserves_contents(self, segment):
        """A respawned worker re-entering its slab sees the same bytes."""
        first = make_shm(segment)
        first.write_slot(3, b"ABCDEFGH")
        second = make_shm(segment)  # same name, same geometry: attach
        assert second.peek_slot(3) == b"ABCDEFGH"
        second.close()
        # first's mapping is stale after the unlink; only release it.
        first.closed = True

    def test_stale_segment_with_wrong_size_is_recreated(self, segment):
        old = make_shm(segment, slots=4)
        old.write_slot(0, b"OLDSLAB!")
        old.closed = True  # simulate a dead creator (no close, no unlink)
        fresh = make_shm(segment, slots=16)
        assert fresh.peek_slot(0) == b"\x00" * 8
        fresh.close()

    def test_segment_name_with_slash_rejected(self):
        with pytest.raises(SegmentError, match="'/'"):
            make_shm("bad/name")

    def test_bit_identical_to_memory_store(self, segment):
        """Same ops on both backings: same durations, counters and bytes."""
        memory = BlockStore(
            name="storage", tier="storage", slots=16, slot_bytes=8, device=hdd_paper()
        )
        shm = make_shm(segment)
        ops = [
            ("write_slot", (2, b"ABCDEFGH")),
            ("read_slot", (2,)),
            ("read_slot", (3,)),  # sequential continuation
            ("write_run", (4, b"y" * 8 * 3)),
            ("read_run", (4, 3)),
        ]
        for op, args in ops:
            got_m = getattr(memory, op)(*args)
            got_s = getattr(shm, op)(*args)
            assert got_m == got_s, op
        assert memory.counters == shm.counters
        assert memory.export_data() == shm.export_data()
        shm.close()

    def test_import_data_rolls_slab_back(self, segment):
        store = make_shm(segment)
        checkpointed = store.export_data()
        store.write_slot(0, b"POSTCKPT")
        store.import_data(checkpointed)
        assert store.peek_slot(0) == b"\x00" * 8
        store.close()

    def test_fault_injector_wraps_shm_store(self, segment):
        """Fault wrapping must compose with the shm backing unchanged."""
        store = make_shm(segment)
        store.write_slot(1, b"GOODDATA")
        FaultInjector(FaultPlan(seed=7, corrupt_read_rate=1.0)).attach(store)
        assert store.read_slot(1) != b"GOODDATA"  # corrupted on the way out
        store.close()
        assert segment not in active_segments()


class TestSegmentHelpers:
    def test_make_segment_name_is_unique_and_prefixed(self):
        names = {make_segment_name("x") for _ in range(32)}
        assert len(names) == 32
        assert all(name.startswith("horam-shm-") for name in names)

    def test_unlink_segment_missing_returns_false(self):
        assert unlink_segment(make_segment_name("ghost")) is False

    def test_unlink_segment_reaps_orphan(self, segment):
        store = make_shm(segment)
        store.closed = True  # orphan the segment (dead-creator simulation)
        assert unlink_segment(segment) is True
        assert segment not in active_segments()


class TestHierarchyShmBackend:
    def test_shm_backend_auto_names_segment(self):
        from repro.storage.hierarchy import StorageHierarchy

        hierarchy = StorageHierarchy(
            memory_slots=4, storage_slots=4, slot_bytes=8, storage_backend="shm"
        )
        assert isinstance(hierarchy.storage, SharedMemoryBlockStore)
        assert hierarchy.storage_path.startswith("horam-shm-")
        assert hierarchy.describe()["storage_backend"] == "shm"
        hierarchy.close()
        assert hierarchy.storage.closed
        assert hierarchy.storage_path not in active_segments()
