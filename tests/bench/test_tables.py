"""Table rendering tests."""

import pytest

from repro.bench.tables import format_bytes, format_us, render_kv, render_table


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4
        # Columns align: every '|' in the same position.
        pipes = {line.index("|") for line in (lines[0], lines[2], lines[3])}
        assert len(pipes) == 1

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_headers(self):
        with pytest.raises(ValueError):
            render_table([], [])


class TestRenderKv:
    def test_title_and_pairs(self):
        text = render_kv("Setup", [("cpu", "i7"), ("disk", "hdd")])
        lines = text.splitlines()
        assert lines[0] == "Setup"
        assert lines[1] == "====="
        assert "cpu" in lines[2] and "i7" in lines[2]


class TestFormatters:
    def test_format_us(self):
        assert format_us(10.0) == "10.0 us"
        assert format_us(2500.0) == "2.5 ms"
        assert format_us(3_000_000.0) == "3.00 s"

    def test_format_bytes(self):
        assert format_bytes(100) == "100 B"
        assert format_bytes(2048) == "2.00 KB"
        assert format_bytes(1 << 30) == "1.00 GB"
