"""CLI runner tests (the ``horam-bench`` entry point)."""

import pytest

from repro.bench.runner import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table5_3" in out and "figure5_1" in out

    def test_unknown_experiment(self, capsys):
        assert main(["table9_9"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_analytic_experiment_runs(self, capsys):
        assert main(["table5_1", "--scale", "full"]) == 0
        out = capsys.readouterr().out
        assert "Table 5-1" in out
        assert "Simulated machine" in out  # Table 5-2 header
        assert "102.7" in out  # the calibrated read throughput

    def test_figure_runs(self, capsys):
        assert main(["figure5_1"]) == 0
        out = capsys.readouterr().out
        assert "c=4" in out

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["table5_1", "--scale", "gigantic"])
