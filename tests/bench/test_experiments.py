"""Experiment harness tests (analytic experiments + registry plumbing).

Simulation-heavy experiments are exercised at quick scale by the
``benchmarks/`` suite; here we cover the closed-form ones fully and the
harness plumbing cheaply.
"""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    figure5_1,
    get_experiment,
    table5_1,
)


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        for required in ("table5_1", "table5_3", "table5_4", "figure5_1", "figure5_2"):
            assert required in EXPERIMENTS

    def test_get_experiment(self):
        assert get_experiment("table5_1") is table5_1
        with pytest.raises(ValueError):
            get_experiment("table9_9")

    def test_ablations_present(self):
        ablations = [name for name in EXPERIMENTS if name.startswith("ablation_")]
        assert len(ablations) >= 5

    def test_conformance_present(self):
        assert "conformance" in EXPERIMENTS

    def test_perf_tooling_present(self):
        assert "parallel" in EXPERIMENTS
        assert "profile" in EXPERIMENTS

    def test_serving_present(self):
        assert "serving" in EXPERIMENTS


class TestProfileExperiment:
    def test_profile_reports_phases_and_functions(self):
        result = get_experiment("profile")(scale="quick")
        assert result.ok
        labels = [row[0] for row in result.rows]
        assert "phase:access" in labels and "phase:shuffle" in labels
        assert any(label.startswith("tier:") for label in labels)
        assert any("(" in label and "repro" in label for label in labels)
        data = result.data
        assert data["phases"]["run"] > 0
        assert data["functions"] and data["functions"][0]["own_seconds"] >= 0
        assert data["throughput_rps"] > 0


class TestConformanceExperiment:
    def test_result_plumbing_on_matrix_slice(self, monkeypatch):
        """Experiment-level wiring (rows, ok flag, shrink-demo payload) on a
        3-scenario slice; the full matrix runs scenario-by-scenario in
        tests/testing/test_conformance.py, no need to pay for it twice."""
        import repro.testing.conformance as conf

        full = conf.default_matrix
        monkeypatch.setattr(conf, "default_matrix", lambda scale="quick": full(scale)[:3])
        result = get_experiment("conformance")(scale="quick")
        assert result.ok
        assert len(result.rows) == 3
        summary = result.data["summary"]
        assert summary["scenarios"] == 3
        assert summary["failed"] == 0
        demo = result.data["shrink_demo"]
        assert demo["reproduced"] and demo["replay_failed_again"]
        assert demo["shrunk_requests"] <= demo["original_requests"]
        # the shrunk spec ships as replayable JSON inside the result
        from repro.testing import ScenarioSpec

        spec = ScenarioSpec.from_json(demo["spec_json"])
        assert spec.workload.kind == "explicit"


class TestTable51:
    def test_matches_paper_numbers(self):
        result = table5_1(scale="full")
        assert result.data["horam_avg_read_kb"] == pytest.approx(4.5)
        assert result.data["horam_avg_write_kb"] == pytest.approx(4.0)
        assert result.data["path_avg_read_kb"] == pytest.approx(16.0)
        assert result.data["path_avg_write_kb"] == pytest.approx(16.0)

    def test_renders(self):
        result = table5_1()
        text = result.render()
        assert "H-ORAM" in text and "Path ORAM" in text
        assert "262144" in text  # requests per period

    def test_small_scale_variant(self):
        result = table5_1(scale="quick")
        # 64 MB / 8 MB keeps the same per-access baseline cost (same ratio).
        assert result.data["path_avg_read_kb"] == pytest.approx(16.0)


class TestFigure51:
    def test_series_shape(self):
        result = figure5_1()
        series = result.data["series"]
        assert set(series) == {1, 2, 4, 8, 16}
        for c, points in series.items():
            ratios = [r for r, _ in points]
            assert ratios == sorted(ratios)

    def test_gain_monotone_in_c(self):
        series = figure5_1().data["series"]
        at_ratio_8 = {c: dict(points)[8] for c, points in series.items()}
        assert at_ratio_8[1] < at_ratio_8[4] < at_ratio_8[16]

    def test_peak_in_paper_band(self):
        assert 10 < figure5_1().data["peak_gain"] < 20


class TestResultType:
    def test_auto_renders_table(self):
        result = ExperimentResult(
            experiment_id="x",
            title="T",
            headers=["a", "b"],
            rows=[[1, 2]],
        )
        assert "a" in result.table

    def test_notes_rendered(self):
        result = ExperimentResult(
            experiment_id="x",
            title="T",
            headers=["a"],
            rows=[[1]],
            notes=["something important"],
        )
        assert "something important" in result.render()
