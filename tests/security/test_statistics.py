"""Statistical machinery tests, cross-checked against SciPy."""

import math

import pytest

scipy_stats = pytest.importorskip("scipy.stats")

from repro.crypto.random import DeterministicRandom
from repro.security.statistics import (
    binned_histogram,
    chi_square_p_value,
    chi_square_statistic,
    chi_square_uniform_test,
    histogram,
    regularized_gamma_q,
)


class TestIncompleteGamma:
    @pytest.mark.parametrize("a", [0.5, 1.0, 2.5, 10.0, 50.0])
    @pytest.mark.parametrize("x", [0.0, 0.1, 1.0, 5.0, 30.0, 100.0])
    def test_matches_scipy(self, a, x):
        ours = regularized_gamma_q(a, x)
        reference = float(scipy_stats.gamma.sf(x, a))
        assert ours == pytest.approx(reference, abs=1e-9)

    def test_edges(self):
        assert regularized_gamma_q(1.0, 0.0) == 1.0
        with pytest.raises(ValueError):
            regularized_gamma_q(0.0, 1.0)
        with pytest.raises(ValueError):
            regularized_gamma_q(1.0, -1.0)


class TestChiSquare:
    def test_statistic_hand_computed(self):
        # observed [10, 20], expected uniform [15, 15]: 25/15 * 2 = 10/3.
        assert chi_square_statistic([10, 20]) == pytest.approx(10.0 / 3.0)

    def test_p_value_matches_scipy(self):
        for statistic, dof in [(1.0, 1), (5.0, 3), (20.0, 10), (3.3, 7)]:
            ours = chi_square_p_value(statistic, dof)
            reference = float(scipy_stats.chi2.sf(statistic, dof))
            assert ours == pytest.approx(reference, abs=1e-9)

    def test_uniform_data_accepted(self):
        rng = DeterministicRandom(1)
        counts = histogram([rng.randrange(10) for _ in range(5000)], 10)
        result = chi_square_uniform_test(counts)
        assert result.p_value > 0.001

    def test_skewed_data_rejected(self):
        counts = [1000, 10, 10, 10]
        result = chi_square_uniform_test(counts)
        assert result.p_value < 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_square_statistic([])
        with pytest.raises(ValueError):
            chi_square_statistic([1, 2], [1])
        with pytest.raises(ValueError):
            chi_square_p_value(1.0, 0)


class TestHistograms:
    def test_histogram(self):
        assert histogram([0, 1, 1, 2], 3) == [1, 2, 1]
        with pytest.raises(ValueError):
            histogram([5], 3)

    def test_binned_histogram_folds_domain(self):
        counts = binned_histogram([0, 99, 50], domain=100, bins=2)
        assert counts == [1, 2]  # 0 -> bin 0; 50 and 99 -> bin 1

    def test_binned_histogram_validation(self):
        with pytest.raises(ValueError):
            binned_histogram([0], domain=0, bins=2)
        with pytest.raises(ValueError):
            binned_histogram([100], domain=100, bins=2)
