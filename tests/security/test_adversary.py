"""Pattern adversary tests: what the attacker measures on real traces."""

import pytest

from repro.crypto.random import DeterministicRandom
from repro.security.adversary import PatternAnalyzer
from repro.sim.engine import SimulationEngine
from repro.workload.generators import hotspot


@pytest.fixture
def analyzed(small_horam):
    rng = DeterministicRandom(13)
    requests = list(
        hotspot(
            small_horam.n_blocks,
            10 * small_horam.period_capacity,
            rng,
            hot_blocks=40,
            hot_probability=0.6,
        )
    )
    SimulationEngine(small_horam).run(requests)
    return small_horam, PatternAnalyzer(small_horam.hierarchy.trace)


class TestUniformity:
    def test_storage_loads_spread_uniformly(self, analyzed):
        oram, analyzer = analyzed
        # A heavily skewed *logical* workload (hot 20 blocks) must still
        # produce statistically uniform *physical* loads.
        result = analyzer.load_uniformity(oram.storage.total_slots, bins=8)
        assert result.p_value > 0.001

    def test_tree_leaves_uniform(self, analyzed):
        oram, analyzer = analyzed
        result = analyzer.leaf_uniformity(
            oram.cache.leaf_log, oram.cache.geometry.leaves, bins=8
        )
        assert result.p_value > 0.001

    def test_no_loads_raises(self):
        from repro.storage.trace import TraceRecorder

        with pytest.raises(ValueError):
            PatternAnalyzer(TraceRecorder()).load_uniformity(100)


class TestLinkage:
    def test_cross_epoch_slot_collisions_at_chance(self, analyzed):
        oram, analyzer = analyzed
        # After a shuffle, re-reading the same physical slot is chance
        # (loads/slots per epoch), not correlation.
        fraction = analyzer.repeat_slot_linkage()
        assert fraction < 0.35  # loads/slots ~ 0.24 for this configuration

    def test_slot_reuse_counter(self, analyzed):
        oram, analyzer = analyzed
        reuse = analyzer.slot_reuse_counter()
        # Read-once per epoch bounds any slot's loads by the epoch count
        # (shuffles completed + the current open epoch).
        assert max(reuse.values()) <= oram.metrics.shuffle_count + 1

    def test_address_slot_correlation_low_for_horam(self, analyzed):
        oram, analyzer = analyzed
        # Build the secret pairing: which slot each logical fetch touched.
        # The permutation refresh must keep repeats unlinked.
        observations = []
        for event in oram.hierarchy.trace.storage_reads():
            if not event.label.startswith("run:"):
                observations.append((0, event.slot))
        # With a single pseudo-address the score is the repeat fraction of
        # raw slots -- near zero for a healthy permutation.
        score = analyzer.address_slot_correlation(observations)
        assert score <= 1.0  # sanity: method runs; strictness below

    def test_correlation_detects_broken_scheme(self):
        # A "broken ORAM" that always reads the same slot for a block.
        observations = [(7, 1234)] * 10 + [(8, 99)] * 3
        score = PatternAnalyzer.address_slot_correlation(observations)
        assert score == 1.0

    def test_correlation_clean_scheme(self):
        observations = [(7, 1), (7, 2), (7, 3), (8, 4), (8, 5)]
        assert PatternAnalyzer.address_slot_correlation(observations) == 0.0


class TestShape:
    def test_per_cycle_io_always_one(self, analyzed):
        _, analyzer = analyzed
        counts = analyzer.per_cycle_io_counts()
        assert counts and set(counts) == {1}

    def test_shape_entropy_zero(self, analyzed):
        _, analyzer = analyzed
        # Zero bits: the storage bus carries no hit/miss information.
        assert analyzer.shape_entropy() == 0.0
