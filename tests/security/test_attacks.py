"""Attack tests: succeed on the plain store, fail on the ORAMs."""

import pytest

from repro.core.horam import build_horam
from repro.crypto.random import DeterministicRandom
from repro.oram.factory import build_path_oram, build_plain
from repro.security.attacks import (
    burst_correlation_attack,
    frequency_attack,
    repeat_access_attack,
)
from repro.sim.engine import SimulationEngine
from repro.workload.generators import hotspot, sequential_scan

N = 512
HOT = 12


def run_plain(requests):
    store = build_plain(n_blocks=N, seed=1, trace=True)
    for request in requests:
        store.read(request.addr)
    return store


def run_horam(requests):
    oram = build_horam(n_blocks=N, mem_tree_blocks=128, seed=1, trace=True)
    SimulationEngine(oram).run(list(requests))
    return oram


@pytest.fixture(scope="module")
def hot_workload():
    rng = DeterministicRandom(3)
    return list(hotspot(N, 1200, rng, hot_blocks=HOT, hot_probability=0.9))


class TestFrequencyAttack:
    def test_recovers_hot_set_from_plain_store(self, hot_workload):
        store = run_plain(hot_workload)
        outcome = frequency_attack(store.hierarchy.trace, set(range(HOT)))
        assert outcome.score > 0.9  # near-total recovery

    def test_fails_against_horam(self, hot_workload):
        oram = run_horam(hot_workload)
        outcome = frequency_attack(oram.hierarchy.trace, set(range(HOT)))
        # Chance level: HOT/total_slots ~ 2%.
        assert outcome.score < 0.35

    def test_empty_inputs(self):
        from repro.storage.trace import TraceRecorder

        assert frequency_attack(TraceRecorder(), set()).score == 0.0


class TestRepeatAccessAttack:
    def test_links_repeats_on_plain_store(self, hot_workload):
        store = run_plain(hot_workload)
        log = [r.addr for r in hot_workload]
        outcome = repeat_access_attack(store.hierarchy.trace, log)
        assert outcome.score == 1.0  # every repeat hits the same slot

    def test_unlinked_on_horam(self, hot_workload):
        oram = run_horam(hot_workload)
        # H-ORAM's loads do not align 1:1 with requests (that is the
        # cache's whole point), so feed the attack the load-aligned view:
        # repeated logical fetches across epochs.
        log = [addr for addr, _ in oram.served_log]
        outcome = repeat_access_attack(oram.hierarchy.trace, log)
        assert outcome.score < 0.2


class TestBurstCorrelationAttack:
    def test_detects_sequential_scan_on_plain_store(self):
        rng = DeterministicRandom(5)
        requests = list(sequential_scan(N, 600, rng))
        store = run_plain(requests)
        outcome = burst_correlation_attack(store.hierarchy.trace, window=8)
        assert outcome.score > 0.9

    def test_no_locality_visible_through_horam(self):
        rng = DeterministicRandom(5)
        requests = list(sequential_scan(N, 600, rng))
        oram = run_horam(requests)
        outcome = burst_correlation_attack(oram.hierarchy.trace, window=8)
        # Chance level ~ 2*8/total_slots ~ 3%.
        assert outcome.score < 0.25

    def test_path_oram_also_hides_locality(self):
        rng = DeterministicRandom(5)
        requests = list(sequential_scan(N, 300, rng))
        oram = build_path_oram(n_blocks=N, memory_blocks=128, seed=1, trace=True)
        for request in requests:
            oram.read(request.addr)
        outcome = burst_correlation_attack(oram.hierarchy.trace, window=8)
        # Bucket runs within a path are spatially adjacent per level, but
        # the level-to-level jumps dominate; far below the plain store.
        assert outcome.score < 0.6
