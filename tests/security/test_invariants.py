"""Invariant checker tests: pass on honest traces, fail on doctored ones."""

import pytest

from repro.crypto.random import DeterministicRandom
from repro.security.invariants import (
    InvariantViolation,
    check_cycle_shape,
    check_read_once_per_epoch,
    check_sequential_shuffle_order,
)
from repro.sim.engine import SimulationEngine
from repro.storage.trace import TraceEvent, TraceRecorder
from repro.workload.generators import hotspot


def ev(op, tier, slot, label=""):
    return TraceEvent(op=op, tier=tier, slot=slot, size=8, time_us=0.0, label=label)


@pytest.fixture
def horam_trace(small_horam):
    # Enough cold traffic to cross several shuffle epochs.
    rng = DeterministicRandom(9)
    requests = list(
        hotspot(
            small_horam.n_blocks,
            10 * small_horam.period_capacity,
            rng,
            hot_blocks=40,
            hot_probability=0.6,
        )
    )
    SimulationEngine(small_horam).run(requests)
    assert small_horam.metrics.shuffle_count >= 1  # exercise epochs
    return small_horam.hierarchy.trace


class TestOnRealTraces:
    def test_read_once_holds(self, horam_trace):
        checked = check_read_once_per_epoch(horam_trace)
        assert checked > 100

    def test_cycle_shape_holds(self, horam_trace):
        shapes = check_cycle_shape(horam_trace)
        assert len(shapes) > 50
        assert all(io == 1 for _, io in shapes)

    def test_shuffle_order_sequential(self, horam_trace):
        assert check_sequential_shuffle_order(horam_trace) >= 1


class TestOnDoctoredTraces:
    def test_double_read_detected(self):
        trace = TraceRecorder()
        trace.record(ev("read", "storage", 5))
        trace.record(ev("read", "storage", 5))
        with pytest.raises(InvariantViolation):
            check_read_once_per_epoch(trace)

    def test_shuffle_resets_epoch(self):
        trace = TraceRecorder()
        trace.record(ev("read", "storage", 5))
        trace.mark("shuffle-end", 1.0)
        trace.record(ev("read", "storage", 5))  # legal: new epoch
        assert check_read_once_per_epoch(trace) == 2

    def test_bulk_runs_exempt(self):
        trace = TraceRecorder()
        trace.record(ev("read", "storage", 5, label="run:10"))
        trace.record(ev("read", "storage", 5, label="run:10"))
        assert check_read_once_per_epoch(trace) == 0

    def test_two_loads_in_a_cycle_detected(self):
        trace = TraceRecorder()
        trace.mark("cycle-start", 0.0)
        trace.record(ev("read", "storage", 1))
        trace.record(ev("read", "storage", 2))
        trace.mark("cycle-end", 1.0)
        with pytest.raises(InvariantViolation):
            check_cycle_shape(trace)

    def test_zero_loads_in_a_cycle_detected(self):
        trace = TraceRecorder()
        trace.mark("cycle-start", 0.0)
        trace.record(ev("read", "memory", 1))
        trace.mark("cycle-end", 1.0)
        with pytest.raises(InvariantViolation):
            check_cycle_shape(trace)

    def test_out_of_order_shuffle_writes_detected(self):
        trace = TraceRecorder()
        trace.mark("shuffle-start", 0.0)
        trace.record(ev("write", "storage", 100, label="run:10"))
        trace.record(ev("write", "storage", 50, label="run:10"))
        with pytest.raises(InvariantViolation):
            check_sequential_shuffle_order(trace)

    def test_stray_cycle_end_detected(self):
        trace = TraceRecorder()
        trace.mark("cycle-end", 0.0)
        with pytest.raises(InvariantViolation):
            check_cycle_shape(trace)
