"""Shared fixtures: small, fast protocol instances for the test suite."""

from __future__ import annotations

import pytest

from repro.core.horam import HybridORAM, build_horam
from repro.crypto.ctr import NullCipher, StreamCipher
from repro.crypto.random import DeterministicRandom
from repro.oram.base import BlockCodec
from repro.oram.factory import build_partition, build_path_oram, build_square_root


@pytest.fixture
def rng() -> DeterministicRandom:
    return DeterministicRandom(1234)


@pytest.fixture
def codec() -> BlockCodec:
    return BlockCodec(16, StreamCipher(b"unit-test-key"))


@pytest.fixture
def plain_codec() -> BlockCodec:
    """Codec with no encryption -- lets tests inspect stored bytes."""
    return BlockCodec(16, NullCipher())


@pytest.fixture
def small_horam() -> HybridORAM:
    """A 512-block H-ORAM with a 128-block memory tree (tree slots 124)."""
    return build_horam(n_blocks=512, mem_tree_blocks=128, seed=42, trace=True)


@pytest.fixture
def small_path_oram():
    return build_path_oram(n_blocks=256, memory_blocks=64, seed=42, trace=True)


@pytest.fixture
def small_square_root():
    return build_square_root(n_blocks=256, seed=42, trace=True)


@pytest.fixture
def small_partition():
    return build_partition(n_blocks=256, seed=42, trace=True)
