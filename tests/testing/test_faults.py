"""Fault-injection layer unit tests (storage/faults.py)."""

import pytest

from repro.storage.backend import BlockStore
from repro.storage.device import DeviceModel, hdd_paper
from repro.storage.faults import (
    FaultInjector,
    FaultPlan,
    UnrecoverableFaultError,
    degraded,
)


def make_store(slots=32, slot_bytes=8):
    return BlockStore(
        name="victim", tier="storage", slots=slots, slot_bytes=slot_bytes,
        device=hdd_paper(),
    )


def fill(store, marker=7):
    for slot in range(store.slots):
        store.poke_slot(slot, bytes([marker]) * store.slot_bytes)


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(read_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(spike_factor=0.5)
        with pytest.raises(ValueError):
            FaultPlan(max_retries=0)

    def test_active_and_describe(self):
        assert not FaultPlan().active()
        plan = FaultPlan(read_error_rate=0.1, torn_write_rate=0.2)
        assert plan.active()
        assert "read-err" in plan.describe() and "torn" in plan.describe()
        assert FaultPlan().describe() == "none"

    def test_json_roundtrip(self):
        plan = FaultPlan(seed=9, read_error_rate=0.25, spike_factor=3.0)
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestTransientReads:
    def test_data_always_correct_and_time_inflated(self):
        store, clean = make_store(), make_store()
        fill(store), fill(clean)
        # modest rate + deep retry budget so no fault escalates to
        # UnrecoverableFaultError in this test (escalation has its own test)
        injector = FaultInjector(FaultPlan(seed=1, read_error_rate=0.3, max_retries=8))
        injector.attach(store)
        total_faulty = total_clean = 0.0
        for slot in range(store.slots):
            record, duration = store.read_slot(slot)
            want, base = clean.read_slot(slot)
            assert record == want  # transient errors are retried, never wrong
            total_faulty += duration
            total_clean += base
        assert injector.stats.read_faults > 0
        assert total_faulty > total_clean
        assert store.counters.busy_us > clean.counters.busy_us

    def test_unrecoverable_after_retry_budget(self):
        store = make_store()
        fill(store)
        injector = FaultInjector(FaultPlan(seed=1, read_error_rate=1.0, max_retries=2))
        injector.attach(store)
        with pytest.raises(UnrecoverableFaultError):
            for slot in range(store.slots):
                store.read_slot(slot)

    def test_escalation_still_records_and_charges_the_failed_attempts(self):
        store = make_store()
        fill(store)
        injector = FaultInjector(FaultPlan(seed=1, read_error_rate=1.0, max_retries=2))
        injector.attach(store)
        with pytest.raises(UnrecoverableFaultError):
            store.read_slot(0)
        assert injector.stats.read_faults == 1
        assert injector.stats.retries == 2
        assert injector.stats.injected_delay_us > 0
        _, base = make_store().read_slot(0)
        # one real attempt + two charged retries before escalating
        assert store.counters.busy_us == pytest.approx(base * 3)

    def test_deterministic_for_seed(self):
        def run(seed):
            store = make_store()
            fill(store)
            injector = FaultInjector(FaultPlan(seed=seed, read_error_rate=0.3))
            injector.attach(store)
            for slot in range(store.slots):
                store.read_slot(slot)
            return injector.stats.read_faults, store.counters.busy_us

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestLatencySpikes:
    def test_spike_inflates_only_time(self):
        store, clean = make_store(), make_store()
        fill(store), fill(clean)
        injector = FaultInjector(FaultPlan(seed=2, latency_spike_rate=1.0, spike_factor=10.0))
        injector.attach(store)
        record, duration = store.read_slot(3)
        want, base = clean.read_slot(3)
        assert record == want
        assert duration == pytest.approx(base * 10.0)
        assert injector.stats.latency_spikes == 1


class TestTornWrites:
    def test_torn_run_lands_fully_and_charges_retry(self):
        store, clean = make_store(), make_store()
        injector = FaultInjector(FaultPlan(seed=3, torn_write_rate=1.0))
        injector.attach(store)
        records = [bytes([i]) * store.slot_bytes for i in range(8)]
        duration = store.write_run(2, records)
        base = clean.write_run(2, records)
        for index, record in enumerate(records):
            assert store.peek_slot(2 + index) == record  # final bytes correct
        assert duration > base  # partial attempt + full retry both charged
        assert injector.stats.torn_writes == 1
        assert store.counters.writes > clean.counters.writes
        # the partial attempt counts as injected delay like any other fault
        assert injector.stats.injected_delay_us == pytest.approx(duration - base)

    def test_single_slot_run_cannot_tear(self):
        """An atomic one-slot run neither tears nor inflates the stats."""
        store, clean = make_store(), make_store()
        injector = FaultInjector(FaultPlan(seed=3, torn_write_rate=1.0))
        injector.attach(store)
        record = b"\x09" * store.slot_bytes
        duration = store.write_run(5, [record])
        base = clean.write_run(5, [record])
        assert duration == base
        assert injector.stats.torn_writes == 0
        assert store.counters.writes == clean.counters.writes

    def test_flat_buffer_input_supported(self):
        store = make_store()
        injector = FaultInjector(FaultPlan(seed=3, torn_write_rate=1.0))
        injector.attach(store)
        flat = bytes(range(store.slot_bytes)) * 4
        store.write_run(0, flat)
        assert store.peek_run(0, 4).tobytes() == flat


class TestCorruption:
    def test_corrupt_read_flips_exactly_one_bit(self):
        store, clean = make_store(), make_store()
        fill(store), fill(clean)
        injector = FaultInjector(FaultPlan(seed=4, corrupt_read_rate=1.0))
        injector.attach(store)
        record, _ = store.read_slot(0)
        want, _ = clean.read_slot(0)
        assert record != want
        diff = int.from_bytes(record, "little") ^ int.from_bytes(want, "little")
        assert bin(diff).count("1") == 1
        # the stored bytes themselves are untouched (read-side corruption)
        assert store.peek_slot(0) == clean.peek_slot(0)

    def test_view_corruption_does_not_touch_disk(self):
        store, clean = make_store(), make_store()
        fill(store), fill(clean)
        injector = FaultInjector(FaultPlan(seed=4, corrupt_read_rate=1.0))
        injector.attach(store)
        view, _ = store.read_run_view(0, 4)
        assert bytes(view) != clean.peek_run(0, 4).tobytes()
        assert store.peek_run(0, 4).tobytes() == clean.peek_run(0, 4).tobytes()


class TestAttach:
    def test_attach_is_idempotent(self):
        store, clean = make_store(), make_store()
        fill(store), fill(clean)
        injector = FaultInjector(FaultPlan(seed=2, latency_spike_rate=1.0, spike_factor=2.0))
        injector.attach(store)
        injector.attach(store)  # must not nest wrappers / double-count
        _, duration = store.read_slot(0)
        _, base = clean.read_slot(0)
        assert duration == pytest.approx(base * 2.0)
        assert injector.stats.latency_spikes == 1


class TestDisabledFaultsAreFree:
    def test_inactive_plan_changes_nothing(self):
        store, clean = make_store(), make_store()
        fill(store), fill(clean)
        FaultInjector(FaultPlan()).attach(store)
        for slot in range(store.slots):
            record, duration = store.read_slot(slot)
            want, base = clean.read_slot(slot)
            assert (record, duration) == (want, base)
        assert store.counters.busy_us == clean.counters.busy_us


class TestDegradedDevice:
    def test_uniform_slowdown(self):
        base = hdd_paper()
        slow = degraded(base, 4.0)
        assert isinstance(slow, DeviceModel)
        assert slow.access_us(1024) == pytest.approx(
            base.read_overhead_us * 4 + base.transfer_us(1024, write=False) * 4
        )

    def test_slowdown_validated(self):
        with pytest.raises(ValueError):
            degraded(hdd_paper(), 0.5)
