"""Regression: ScenarioRunner must release stack resources on *failure*.

A scenario that raises (unrecoverable faults), fails its comparisons
(seeded corruption), or crashes on purpose must still shut down parallel
worker pools and remove durable slab directories -- a leaked worker
process after a red scenario poisons every later test in the session.
"""

import multiprocessing
import os
import tempfile

from repro.storage.faults import FaultPlan
from repro.testing.scenario import CrashSpec, ScenarioRunner, ScenarioSpec
from repro.testing.stacks import StackSpec, build_stack
from repro.workload.generators import WorkloadSpec


def _spec(name, **overrides) -> ScenarioSpec:
    stack = dict(
        protocol="sharded", n_blocks=512, mem_blocks=128, n_shards=2,
        executor="parallel", seed=3,
    )
    stack.update(overrides.pop("stack", {}))
    return ScenarioSpec(
        name=name,
        stack=StackSpec(**stack),
        workload=WorkloadSpec(kind="hotspot", n_blocks=512, count=120, seed=8),
        **overrides,
    )


def _slab_dirs() -> set:
    tmp = tempfile.gettempdir()
    return {d for d in os.listdir(tmp) if d.startswith("horam-slab-")}


class TestFailureCleanup:
    def test_raising_parallel_scenario_leaks_no_processes(self):
        """An UnrecoverableFaultError mid-run must still shut the pools down."""
        before = set(multiprocessing.active_children())
        spec = _spec(
            "raising-parallel",
            faults=FaultPlan(seed=1, read_error_rate=1.0),
        )
        result = ScenarioRunner().run(spec)
        assert not result.ok
        assert "raised" in (result.error or "") or result.failures
        leaked = set(multiprocessing.active_children()) - before
        assert not leaked, f"leaked worker processes: {leaked}"

    def test_failing_comparison_still_closes_parallel_pools(self):
        """Silent corruption fails comparisons (no exception); pools close."""
        before = set(multiprocessing.active_children())
        spec = _spec(
            "corrupt-parallel",
            faults=FaultPlan(seed=2, corrupt_read_rate=0.2),
            expect_failure=True,
        )
        result = ScenarioRunner().run(spec)
        assert not result.ok  # the corruption was detected differentially
        leaked = set(multiprocessing.active_children()) - before
        assert not leaked, f"leaked worker processes: {leaked}"

    def test_crash_scenario_cleans_slabs_and_processes(self):
        before_children = set(multiprocessing.active_children())
        before_slabs = _slab_dirs()
        spec = _spec(
            "crash-parallel-durable",
            stack={"storage_backend": "file"},
            crash=CrashSpec(snapshot_at=40, crash_at_op=20),
        )
        result = ScenarioRunner().run(spec)
        assert result.ok, result.failures
        assert result.crash_info["crashed"] and result.crash_info["recovered"]
        assert not (set(multiprocessing.active_children()) - before_children)
        assert not (_slab_dirs() - before_slabs), "leaked slab tmpdirs"

    def test_built_stack_cleanup_removes_slab_dir(self):
        stack = build_stack(
            StackSpec(protocol="horam", n_blocks=256, mem_blocks=64, storage_backend="file")
        )
        slab_dir = stack.storage_dir
        assert slab_dir is not None and os.path.isdir(slab_dir)
        stack.cleanup()
        assert not os.path.isdir(slab_dir)
        assert stack.storage_dir is None
