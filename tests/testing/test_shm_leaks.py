"""Regression: no shared-memory segment outlives its stack.

Every teardown path a shm-backed fleet can take -- graceful close, shard
fence, respawn, injected crash with supervised recovery, a scenario that
fails mid-run -- must leave ``/dev/shm`` exactly as it found it.  A
leaked segment pins physical memory until reboot, which is strictly
worse than the leaked tmpdirs the durable backend risks.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.sharding import build_sharded_horam
from repro.crypto.random import DeterministicRandom
from repro.storage.faults import FaultPlan
from repro.storage.shm import active_segments
from repro.testing.scenario import CrashSpec, ScenarioRunner, ScenarioSpec
from repro.testing.stacks import StackSpec, build_stack
from repro.workload.generators import WorkloadSpec, hotspot


@pytest.fixture
def segments_before():
    before = set(active_segments())
    yield before
    leaked = set(active_segments()) - before
    assert not leaked, f"leaked shm segments: {sorted(leaked)}"


def _fleet(n_shards=2, executor="parallel"):
    return build_sharded_horam(
        n_blocks=256, mem_tree_blocks=64, n_shards=n_shards, seed=0,
        executor=executor, storage_backend="shm",
    )


def _requests(count, seed=11):
    rng = DeterministicRandom(seed)
    return list(hotspot(256, count, rng, hot_blocks=32))


def _drive(fleet, count):
    for request in _requests(count):
        fleet.submit(request)
        while fleet.has_work():
            fleet.step()
        fleet.retire()


class TestExecutorTeardown:
    def test_close_unlinks_every_shard_slab(self, segments_before):
        fleet = _fleet()
        _drive(fleet, 8)
        created = set(active_segments()) - segments_before
        assert created, "shm fleet created no segments?"
        fleet.close()

    def test_double_close_after_drain(self, segments_before):
        fleet = _fleet()
        _drive(fleet, 4)
        fleet.close()
        fleet.close()

    def test_close_mid_drain_with_queued_work(self, segments_before):
        fleet = _fleet()
        for request in _requests(8):
            fleet.submit(request)
        fleet.step()  # leave retirements unharvested
        fleet.close()

    def test_fence_reaps_the_fenced_shards_slab(self, segments_before):
        fleet = _fleet()
        fleet.executor.monitored = True
        _drive(fleet, 4)
        during = set(active_segments()) - segments_before
        fleet.executor.fence_shard(0)
        after_fence = set(active_segments()) - segments_before
        assert after_fence < during  # shard 0's slab and scratch are gone
        fleet.close()

    def test_respawn_recreates_without_leaking(self, segments_before):
        fleet = _fleet()
        fleet.executor.monitored = True
        _drive(fleet, 4)
        fleet.executor.fence_shard(1)
        fleet.executor.respawn_shard(1)
        _drive(fleet, 4)
        fleet.close()

    def test_crashed_worker_slab_reaped_on_close(self, segments_before):
        """A killed worker cannot close() its store; the coordinator must."""
        from repro.core.executor import ShardCrashed

        fleet = _fleet()
        fleet.executor.monitored = True
        fleet.executor.install_fault_plan(
            FaultPlan(seed=0, crash_schedule=[5], crash_op_kind="any")
        )
        with pytest.raises(ShardCrashed):
            _drive(fleet, 30)
        fleet.close()

    def test_serial_shm_fleet_closes_clean(self, segments_before):
        fleet = _fleet(executor="serial")
        _drive(fleet, 4)
        fleet.close()


class TestSupervisedTeardown:
    def test_crash_recovery_cycle_leaks_nothing(self, segments_before, tmp_path):
        from repro.core.supervisor import FleetSupervisor, SupervisorConfig

        supervisor = FleetSupervisor(
            _fleet(),
            str(tmp_path),
            SupervisorConfig(checkpoint_every_ops=8, max_restarts=4),
        )
        supervisor.install_fault_plan(
            FaultPlan(seed=3, crash_schedule=[10], crash_op_kind="any")
        )
        for request in _requests(40):
            supervisor.submit(request)
            supervisor.drain()
        events = [event.kind for event in supervisor.events]
        assert "restored" in events  # the crash actually happened
        supervisor.close()


class TestScenarioTeardown:
    def _spec(self, name, **overrides) -> ScenarioSpec:
        stack = dict(
            protocol="sharded", n_blocks=512, mem_blocks=128, n_shards=2,
            executor="parallel", seed=3, storage_backend="shm",
        )
        stack.update(overrides.pop("stack", {}))
        return ScenarioSpec(
            name=name,
            stack=StackSpec(**stack),
            workload=WorkloadSpec(kind="hotspot", n_blocks=512, count=120, seed=8),
            **overrides,
        )

    def test_green_shm_scenario_cleans_up(self, segments_before):
        result = ScenarioRunner().run(self._spec("green-shm"))
        assert result.ok, result.failures

    def test_raising_shm_scenario_cleans_up(self, segments_before):
        before = set(multiprocessing.active_children())
        result = ScenarioRunner().run(
            self._spec("raising-shm", faults=FaultPlan(seed=1, read_error_rate=1.0))
        )
        assert not result.ok
        assert not (set(multiprocessing.active_children()) - before)

    def test_crash_shm_scenario_cleans_up(self, segments_before):
        result = ScenarioRunner().run(
            self._spec("crash-shm", crash=CrashSpec(snapshot_at=40, crash_at_op=20))
        )
        assert result.ok, result.failures
        assert result.crash_info["crashed"] and result.crash_info["recovered"]

    def test_built_stack_cleanup_needs_no_storage_dir(self, segments_before):
        stack = build_stack(
            StackSpec(protocol="horam", n_blocks=256, mem_blocks=64, storage_backend="shm")
        )
        assert stack.storage_dir is None  # shm slabs live in /dev/shm, not tmp
        stack.cleanup()
