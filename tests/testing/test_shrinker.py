"""Scenario shrinker tests: minimize, replay, round-trip."""

import pytest

from repro.storage.faults import FaultPlan
from repro.testing import ScenarioRunner, ScenarioSpec, StackSpec, shrink
from repro.testing.conformance import corruption_demo_spec, seeded_fault_demo
from repro.testing.replay import main as replay_main
from repro.workload.generators import WorkloadSpec, make_workload


def failing_spec(count=120):
    """Silent read corruption: reproducibly non-conforming."""
    return ScenarioSpec(
        name="corrupt",
        stack=StackSpec(n_blocks=512, mem_blocks=128, seed=13),
        workload=WorkloadSpec(kind="hotspot", n_blocks=512, count=count, seed=92, write_ratio=0.25),
        faults=FaultPlan(seed=6, corrupt_read_rate=0.05),
        expect_failure=True,
    )


class TestShrink:
    def test_shrinks_and_replays(self):
        runner = ScenarioRunner()
        result = shrink(failing_spec(), runner=runner, max_attempts=120)
        assert result.shrunk_requests < result.original_requests
        assert result.spec.workload.kind == "explicit"
        assert result.last_failures
        # The minimized spec replays to a failure after a JSON round-trip.
        replayed = ScenarioSpec.from_json(result.spec.to_json())
        assert not runner.run(replayed).ok

    def test_passing_scenario_refused(self):
        spec = ScenarioSpec(
            name="fine",
            stack=StackSpec(n_blocks=256, mem_blocks=64),
            workload=WorkloadSpec(kind="uniform", n_blocks=256, count=40, seed=1),
        )
        with pytest.raises(ValueError, match="does not fail"):
            shrink(spec)

    def test_explicit_workload_materializes_identically(self):
        spec = failing_spec(count=30)
        requests = make_workload(spec.workload)
        from repro.testing.shrinker import _explicit_spec, _to_items

        explicit = make_workload(_explicit_spec(spec, _to_items(requests)).workload)
        assert [(r.op, r.addr, r.data) for r in explicit] == [
            (r.op, r.addr, r.data) for r in requests
        ]


class TestSeededFaultDemo:
    def test_end_to_end_reproduce_shrink_replay(self):
        original, shrunk, replay = seeded_fault_demo("quick", max_attempts=120)
        assert not original.ok  # the seeded fault reproduces
        assert shrunk.shrunk_requests <= shrunk.original_requests
        assert not replay.ok  # the shrunk spec is a replayable repro
        assert corruption_demo_spec("quick").expect_failure


class TestReplayCLI:
    def test_replay_from_file(self, tmp_path):
        spec_path = tmp_path / "repro.json"
        spec_path.write_text(failing_spec(count=40).to_json(), encoding="utf-8")
        # expect_failure spec that fails again -> exit 0 (reproduced)
        assert replay_main([str(spec_path)]) == 0

    def test_replay_passing_spec(self, tmp_path):
        spec = ScenarioSpec(
            name="fine",
            stack=StackSpec(n_blocks=256, mem_blocks=64),
            workload=WorkloadSpec(kind="uniform", n_blocks=256, count=30, seed=2),
        )
        spec_path = tmp_path / "fine.json"
        spec_path.write_text(spec.to_json(), encoding="utf-8")
        assert replay_main([str(spec_path)]) == 0
