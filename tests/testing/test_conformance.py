"""Tier-2 conformance matrix: every standing scenario must conform.

The exact specs behind ``horam-bench conformance`` run here one test per
scenario, so a regression names the offending stack/workload/fault
combination directly in the pytest report.
"""

import pytest

from repro.sim.engine import SimulationEngine
from repro.storage.faults import FaultPlan
from repro.testing import (
    ScenarioRunner,
    ScenarioSpec,
    StackSpec,
    build_stack,
    default_matrix,
    matrix_summary,
    run_matrix,
)
from repro.workload.generators import WorkloadSpec

MATRIX = default_matrix("quick")
_RUNNER = ScenarioRunner()


class TestDefaultMatrix:
    def test_matrix_is_broad_enough(self):
        """The acceptance floor: >=12 scenarios, >=3 protocols, >=2 devices,
        shard widths 1/2/4/8, >=2 fault-injection scenarios."""
        assert len(MATRIX) >= 12
        protocols = {spec.stack.protocol for spec in MATRIX}
        assert {"horam", "sharded", "path"} <= protocols
        assert len(protocols) >= 4
        devices = {spec.stack.device for spec in MATRIX}
        assert len(devices) >= 2
        shard_widths = {
            spec.stack.n_shards for spec in MATRIX if spec.stack.protocol == "sharded"
        }
        assert {1, 2, 4, 8} <= shard_widths
        faulted = [spec for spec in MATRIX if spec.faults and spec.faults.active()]
        assert len(faulted) >= 2
        assert any(spec.stack.users for spec in MATRIX)
        # Durability tier: crash/restore scenarios, including one on the
        # parallel executor and one landing mid-shuffle (write_run), plus a
        # disk-backed slab scenario.
        crashes = [spec for spec in MATRIX if spec.crash is not None]
        assert len(crashes) >= 3
        assert any(spec.stack.executor == "parallel" for spec in crashes)
        assert any(spec.crash.crash_op_kind == "write_run" for spec in crashes)
        assert any(spec.stack.storage_backend == "file" for spec in MATRIX)
        # Chaos tier: wire faults, a supervised backend crash storm and a
        # mid-stream graceful drain, all on the serve path.
        chaotic = [
            spec
            for spec in MATRIX
            if spec.serve is not None and spec.serve.chaotic()
        ]
        assert len(chaotic) >= 3
        assert any(
            spec.serve.chaos is not None and spec.serve.chaos.active()
            for spec in chaotic
        )
        assert any(
            spec.serve.crash_ops and spec.stack.supervised for spec in chaotic
        )
        assert any(spec.serve.drain_after for spec in chaotic)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            default_matrix("huge")

    @pytest.mark.parametrize("spec", MATRIX, ids=[s.name for s in MATRIX])
    def test_scenario_conforms(self, spec):
        result = _RUNNER.run(spec)
        assert result.ok, "\n".join(result.failures)
        assert result.mismatches == 0
        assert result.final_state_checked > 0

    def test_matrix_summary_counts(self):
        results = run_matrix(MATRIX[:3])
        summary = matrix_summary(results)
        assert summary["scenarios"] == 3
        assert summary["passed"] + summary["failed"] == 3


class TestSpecSerialization:
    def test_json_roundtrip_preserves_everything(self):
        spec = ScenarioSpec(
            name="rt",
            stack=StackSpec(protocol="sharded", n_blocks=1024, n_shards=4, users=2),
            workload=WorkloadSpec(kind="stride", n_blocks=1024, count=64, params={"step": 4}),
            faults=FaultPlan(seed=2, torn_write_rate=0.5),
            expect_failure=True,
        )
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec

    def test_workload_must_fit_stack(self):
        with pytest.raises(ValueError, match="spans"):
            ScenarioSpec(
                name="bad",
                stack=StackSpec(n_blocks=128),
                workload=WorkloadSpec(n_blocks=256, count=10),
            )


class TestHarnessCatchesBugs:
    """The differential harness must actually detect non-conformance."""

    def _spec(self, **fault_kwargs):
        return ScenarioSpec(
            name="seeded-bug",
            stack=StackSpec(n_blocks=512, mem_blocks=128, seed=3),
            workload=WorkloadSpec(kind="hotspot", n_blocks=512, count=120, seed=9, write_ratio=0.3),
            faults=FaultPlan(seed=1, **fault_kwargs) if fault_kwargs else None,
        )

    def test_silent_corruption_detected(self):
        result = _RUNNER.run(self._spec(corrupt_read_rate=0.08))
        assert not result.ok
        assert result.mismatches > 0 or result.error or result.failures

    def test_unrecoverable_fault_propagates_as_failure(self):
        result = _RUNNER.run(self._spec(read_error_rate=0.98, max_retries=2))
        assert not result.ok
        assert result.error is not None and "UnrecoverableFaultError" in result.error

    def test_fault_stats_reported(self):
        result = _RUNNER.run(self._spec(latency_spike_rate=0.2))
        assert result.ok  # spikes are timing-only
        assert result.fault_stats is not None
        assert result.fault_stats.latency_spikes > 0
        assert result.fault_stats.injected_delay_us > 0


class TestStackSpecs:
    def test_invalid_protocol_and_device_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            StackSpec(protocol="bogus")
        with pytest.raises(ValueError, match="unknown device"):
            StackSpec(device="tape")
        with pytest.raises(ValueError, match="batched back end"):
            StackSpec(protocol="path", users=2)

    def test_build_stack_shapes(self):
        sharded = build_stack(StackSpec(protocol="sharded", n_blocks=1024, n_shards=4))
        assert len(sharded.storage_stores) == 4
        assert sharded.batched
        path = build_stack(StackSpec(protocol="path", n_blocks=256, mem_blocks=64))
        assert len(path.storage_stores) == 1
        assert not path.batched


class TestEngineResultRecording:
    def test_batched_and_sync_results_in_stream_order(self):
        from repro.oram.factory import build_plain
        from repro.oram.base import Request, initial_payload

        plain = build_plain(64)
        engine = SimulationEngine(plain, record_results=True)
        engine.run([Request.read(5), Request.write(6, b"x"), Request.read(6)])
        assert engine.results[0] == plain.codec.pad(initial_payload(5))
        assert engine.results[1] is None  # synchronous write returns nothing
        assert engine.results[2] == plain.codec.pad(b"x")
