"""Crash-storm soaks: supervised scenarios in the conformance harness.

A storm schedules shard failures under a FleetSupervisor and expects the
fleet to keep serving -- every incident auto-recovered (or fenced when
the spec says so), every never-fenced request bit-identical to an
uninterrupted, unsupervised twin, and the whole choreography replayable
from the spec's JSON.
"""

from __future__ import annotations

import pytest

from repro.storage.faults import FaultPlan
from repro.testing.scenario import (
    ScenarioRunner,
    ScenarioSpec,
    StormSpec,
)
from repro.testing.stacks import StackSpec
from repro.workload.generators import WorkloadSpec

_RUNNER = ScenarioRunner()


def _storm_spec(
    name="storm",
    count=120,
    n_shards=2,
    executor="serial",
    storm=None,
    max_restarts=2,
    faults=None,
    crash=None,
    supervised=True,
):
    return ScenarioSpec(
        name=name,
        stack=StackSpec(
            protocol="sharded",
            n_blocks=512,
            mem_blocks=128,
            n_shards=n_shards,
            seed=11,
            executor=executor,
            supervised=supervised,
            checkpoint_every_ops=24,
            max_restarts=max_restarts,
        ),
        workload=WorkloadSpec(
            kind="hotspot", n_blocks=512, count=count, seed=78, write_ratio=0.25
        ),
        storm=storm,
        faults=faults,
        crash=crash,
    )


class TestStormScenarios:
    def test_serial_storm_conforms(self):
        result = _RUNNER.run(_storm_spec(storm=StormSpec(crash_ops=[40, 90])))
        assert result.ok, "\n".join(result.failures)
        assert result.crash_info["crashes"] == 2
        assert result.crash_info["restores"] == 2
        assert result.crash_info["fenced"] == []
        assert result.mismatches == 0

    def test_parallel_storm_conforms(self):
        result = _RUNNER.run(
            _storm_spec(count=80, executor="parallel", storm=StormSpec(crash_ops=[40]))
        )
        assert result.ok, "\n".join(result.failures)
        assert result.crash_info["crashes"] >= 1
        assert result.crash_info["restores"] == result.crash_info["crashes"]

    def test_expected_fencing_degrades_gracefully(self):
        result = _RUNNER.run(
            _storm_spec(
                max_restarts=0,
                storm=StormSpec(crash_ops=[40], expect_fenced=True),
            )
        )
        assert result.ok, "\n".join(result.failures)
        assert len(result.crash_info["fenced"]) == 1

    def test_unexpected_fencing_fails_the_scenario(self):
        result = _RUNNER.run(
            _storm_spec(max_restarts=0, storm=StormSpec(crash_ops=[40]))
        )
        assert not result.ok
        assert any("fenced" in failure for failure in result.failures)

    def test_supervised_passthrough_conforms(self):
        """No storm: a supervised stack must behave exactly like the
        bare fleet under the standard differential run."""
        result = _RUNNER.run(_storm_spec(name="passthrough", storm=None))
        assert result.ok, "\n".join(result.failures)
        assert result.mismatches == 0

    def test_storm_trace_survives_json_round_trip(self):
        spec = _storm_spec(storm=StormSpec(crash_ops=[40, 90]))
        replayed_spec = ScenarioSpec.from_json(spec.to_json())
        assert replayed_spec.storm == spec.storm
        original = _RUNNER.run(spec)
        replay = _RUNNER.run(replayed_spec)
        assert original.ok and replay.ok
        # determinism: same seed + same schedule => bit-identical trace
        assert original.crash_info["trace"] == replay.crash_info["trace"]


class TestStormValidation:
    def test_storm_requires_supervised_stack(self):
        with pytest.raises(ValueError, match="supervised"):
            _storm_spec(supervised=False, storm=StormSpec(crash_ops=[10]))

    def test_storm_excludes_fault_plans(self):
        with pytest.raises(ValueError):
            _storm_spec(
                storm=StormSpec(crash_ops=[10]),
                faults=FaultPlan(seed=1, read_error_rate=0.1),
            )

    def test_storm_needs_a_failure_point(self):
        with pytest.raises(ValueError, match="at least one crash or hang"):
            StormSpec()

    def test_crash_ops_are_one_based_and_increasing(self):
        with pytest.raises(ValueError):
            StormSpec(crash_ops=[0])
        with pytest.raises(ValueError):
            StormSpec(crash_ops=[20, 10])


class TestFaultCountersSurface:
    def test_recoverable_faults_surface_in_metrics_extra(self):
        """Satellite check: injector retries/escalations/backoff land in
        Metrics.extra for a plain (unsupervised) faulted scenario."""
        spec = ScenarioSpec(
            name="faulted",
            stack=StackSpec(protocol="horam", n_blocks=512, mem_blocks=128, seed=5),
            workload=WorkloadSpec(
                kind="hotspot", n_blocks=512, count=150, seed=6, write_ratio=0.25
            ),
            faults=FaultPlan(seed=3, read_error_rate=0.05, latency_spike_rate=0.05),
        )
        result = _RUNNER.run(spec)
        assert result.ok, "\n".join(result.failures)
        extra = result.metrics.extra
        assert extra["fault_read_faults"] > 0
        assert extra["fault_retries"] >= extra["fault_read_faults"]
        assert extra["fault_injected_delay_us"] > 0
        assert extra["fault_escalations"] == 0

    def test_supervised_metrics_carry_fault_and_supervisor_counters(self):
        result = _RUNNER.run(_storm_spec(storm=StormSpec(crash_ops=[40])))
        assert result.ok, "\n".join(result.failures)
        extra = result.metrics.extra
        assert extra["supervisor_crashes"] == 1
        assert extra["supervisor_restores"] == 1
        assert extra["supervisor_checkpoints"] >= 2
        assert "fault_crashes" in extra
