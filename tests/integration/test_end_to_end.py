"""Cross-protocol integration: one workload, four ORAMs, shared oracle."""

import pytest

from repro.core.horam import build_horam
from repro.crypto.random import DeterministicRandom
from repro.oram.factory import build_partition, build_path_oram, build_square_root
from repro.sim.engine import SimulationEngine
from repro.workload.generators import read_write_mix

N_BLOCKS = 256
REQUESTS = 300


def paired_workload(seed=99):
    rng = DeterministicRandom(seed)
    return list(
        read_write_mix(N_BLOCKS, REQUESTS, rng, write_ratio=0.3, hot_blocks=24)
    )


@pytest.fixture(scope="module")
def results():
    workload = paired_workload()
    protocols = {
        "horam": build_horam(n_blocks=N_BLOCKS, mem_tree_blocks=64, seed=5),
        "path": build_path_oram(n_blocks=N_BLOCKS, memory_blocks=64, seed=5),
        "sqrt": build_square_root(n_blocks=N_BLOCKS, seed=5),
        "partition": build_partition(n_blocks=N_BLOCKS, seed=5),
    }
    outcome = {}
    for name, protocol in protocols.items():
        metrics = SimulationEngine(protocol, verify=True).run(list(workload))
        outcome[name] = (protocol, metrics)
    return outcome


class TestAllProtocolsCorrect:
    @pytest.mark.parametrize("name", ["horam", "path", "sqrt", "partition"])
    def test_served_everything(self, results, name):
        _, metrics = results[name]
        assert metrics.requests_served == REQUESTS
        # verify=True already enforced read correctness.


class TestPerformanceOrdering:
    def test_horam_beats_tree_top_path_oram(self, results):
        assert (
            results["horam"][1].total_time_us < results["path"][1].total_time_us
        )

    def test_horam_issues_fewest_storage_loads(self, results):
        horam_loads = results["horam"][1].io_reads
        path_loads = results["path"][1].io_reads
        assert horam_loads < path_loads

    def test_square_root_pays_shelter_scans(self, results):
        # Square-root ORAM scans its shelter twice per access; its memory
        # traffic per request must far exceed H-ORAM's log-depth paths.
        sqrt_mem = results["sqrt"][1].mem_bytes / REQUESTS
        horam_mem = results["horam"][1].mem_bytes / REQUESTS
        assert sqrt_mem > 0 and horam_mem > 0

    def test_flat_schemes_use_single_block_fetches(self, results):
        for name in ("sqrt", "partition"):
            metrics = results[name][1]
            # Access-period reads of one block each; no multi-bucket paths.
            assert metrics.io_bytes_read / max(1, metrics.io_reads) == pytest.approx(
                1024, rel=0.01
            )


class TestDeterminismAcrossRuns:
    def test_same_seed_same_metrics(self):
        workload = paired_workload(seed=7)
        a = SimulationEngine(
            build_horam(n_blocks=N_BLOCKS, mem_tree_blocks=64, seed=11)
        ).run(list(workload))
        b = SimulationEngine(
            build_horam(n_blocks=N_BLOCKS, mem_tree_blocks=64, seed=11)
        ).run(list(workload))
        assert a.total_time_us == b.total_time_us
        assert a.io_reads == b.io_reads

    def test_different_seed_different_trace(self):
        workload = paired_workload(seed=7)
        a = build_horam(n_blocks=N_BLOCKS, mem_tree_blocks=64, seed=1, trace=True)
        b = build_horam(n_blocks=N_BLOCKS, mem_tree_blocks=64, seed=2, trace=True)
        SimulationEngine(a).run(list(workload))
        SimulationEngine(b).run(list(workload))
        slots_a = [e.slot for e in a.hierarchy.trace.storage_reads()]
        slots_b = [e.slot for e in b.hierarchy.trace.storage_reads()]
        assert slots_a != slots_b
