"""Property-based integration tests: ORAM == dict, under arbitrary ops."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.horam import build_horam
from repro.oram.base import OpKind, Request, initial_payload
from repro.oram.factory import build_partition, build_path_oram, build_square_root

N = 64  # tiny address space so hypothesis explores collisions

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["r", "w"]),
        st.integers(min_value=0, max_value=N - 1),
        st.binary(min_size=0, max_size=16),
    ),
    max_size=40,
)


def run_ops(oram, ops):
    """Apply (op, addr, data) against the ORAM and a dict oracle."""
    oracle = {}
    for kind, addr, data in ops:
        if kind == "w":
            oram.write(addr, data)
            oracle[addr] = oram.codec.pad(data)
        else:
            got = oram.read(addr)
            want = oracle.get(addr, oram.codec.pad(initial_payload(addr)))
            assert got == want


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_horam_matches_dict(ops):
    run_ops(build_horam(n_blocks=N, mem_tree_blocks=32, seed=0), ops)


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_path_oram_matches_dict(ops):
    run_ops(build_path_oram(n_blocks=N, memory_blocks=16, seed=0), ops)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_square_root_matches_dict(ops):
    run_ops(build_square_root(n_blocks=N, seed=0), ops)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_partition_matches_dict(ops):
    run_ops(build_partition(n_blocks=N, seed=0), ops)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy, ratio=st.sampled_from([2, 4]))
def test_horam_partial_shuffle_matches_dict(ops, ratio):
    oram = build_horam(
        n_blocks=N, mem_tree_blocks=32, seed=0, shuffle_period_ratio=ratio
    )
    run_ops(oram, ops)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    addrs=st.lists(st.integers(min_value=0, max_value=N - 1), min_size=1, max_size=30)
)
def test_horam_batch_equals_sync_results(addrs):
    """The batch pipeline returns the same payloads as one-by-one access."""
    batch = build_horam(n_blocks=N, mem_tree_blocks=32, seed=3)
    entries = [batch.submit(Request(op=OpKind.READ, addr=a)) for a in addrs]
    batch.drain()
    sync = build_horam(n_blocks=N, mem_tree_blocks=32, seed=3)
    for entry, addr in zip(entries, addrs):
        assert entry.result == sync.read(addr)
