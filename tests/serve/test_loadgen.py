"""Load generator tests: arrival processes, churn, hotspots, open loop."""

import pytest

from repro.core.horam import build_horam
from repro.serve import LoadSpec, diff_served, generate_load, replay_direct, run_load
from repro.serve.loadgen import arrival_times, tenants_used
from repro.crypto.random import DeterministicRandom


class TestStreams:
    def test_deterministic_for_a_seed(self):
        spec = LoadSpec(rate_per_s=300, duration_s=1.0, seed=4)
        assert generate_load(spec) == generate_load(spec)

    def test_different_seeds_differ(self):
        a = generate_load(LoadSpec(rate_per_s=300, duration_s=1.0, seed=1))
        b = generate_load(LoadSpec(rate_per_s=300, duration_s=1.0, seed=2))
        assert a != b

    def test_poisson_rate_is_roughly_honoured(self):
        spec = LoadSpec(rate_per_s=500, duration_s=2.0, seed=3)
        times = arrival_times(spec, DeterministicRandom("poisson-test"))
        assert 700 <= len(times) <= 1300  # ~1000 expected
        assert all(0 <= t < spec.duration_s for t in times)
        assert times == sorted(times)

    def test_diurnal_swings_the_rate(self):
        spec = LoadSpec(
            arrival="diurnal", rate_per_s=400, duration_s=2.0,
            peak_ratio=4.0, diurnal_period_s=2.0, seed=5,
        )
        times = arrival_times(spec, DeterministicRandom("diurnal-test"))
        assert all(0 <= t < spec.duration_s for t in times)
        # The first quarter-period is trough, the middle is peak: the
        # middle half of the window must be visibly denser.
        trough = sum(1 for t in times if t < 0.5)
        peak = sum(1 for t in times if 0.75 <= t < 1.25)
        assert peak > 1.5 * trough

    def test_addresses_stay_in_range(self):
        spec = LoadSpec(
            rate_per_s=400, duration_s=1.0, n_blocks=64,
            hot_probability=1.0, hotspot_move_every_s=0.2, seed=6,
        )
        stream = generate_load(spec)
        assert stream
        assert all(0 <= r.addr < 64 for r in stream)

    def test_hotspot_moves_between_epochs(self):
        spec = LoadSpec(
            rate_per_s=400, duration_s=1.0, n_blocks=1024, hot_fraction=0.05,
            hot_probability=1.0, hotspot_move_every_s=0.5, seed=7,
        )
        stream = generate_load(spec)
        early = {r.addr for r in stream if r.at_s < 0.5}
        late = {r.addr for r in stream if r.at_s >= 0.5}
        assert early and late
        # Disjoint hot ranges: at most stray overlap from the modulo wrap.
        assert len(early & late) < min(len(early), len(late)) / 2

    def test_tenant_churn_slides_the_window(self):
        spec = LoadSpec(
            rate_per_s=400, duration_s=2.0, tenants=2,
            tenant_churn_every_s=0.5, seed=8,
        )
        stream = generate_load(spec)
        used = {r.tenant for r in stream}
        assert used <= set(tenants_used(spec))
        assert len(tenants_used(spec)) == 5  # epochs 0..3, window of 2
        assert len(used) > 2  # churn actually brought new tenants in

    def test_no_churn_uses_the_base_window(self):
        spec = LoadSpec(rate_per_s=300, duration_s=1.0, tenants=3, seed=9)
        assert tenants_used(spec) == [0, 1, 2]
        assert {r.tenant for r in generate_load(spec)} <= {0, 1, 2}

    def test_write_ratio_mixes_ops(self):
        spec = LoadSpec(rate_per_s=400, duration_s=1.0, write_ratio=0.5, seed=10)
        stream = generate_load(spec)
        ops = {r.op for r in stream}
        assert ops == {"read", "write"}
        assert all(r.data is not None for r in stream if r.op == "write")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LoadSpec(arrival="lunar")
        with pytest.raises(ValueError):
            LoadSpec(rate_per_s=0)
        with pytest.raises(ValueError):
            LoadSpec(tenants=0)


class TestOpenLoop:
    def test_run_load_serves_and_twins(self, run, make_pair):
        spec = LoadSpec(
            rate_per_s=150, duration_s=0.4, tenants=2, n_blocks=256,
            write_ratio=0.3, seed=11,
        )

        async def scenario():
            stack = build_horam(n_blocks=256, mem_tree_blocks=64, seed=13)
            server, client = await make_pair(stack)
            for tenant in tenants_used(spec):
                server.add_tenant(tenant)
            report = await run_load(client, spec, time_scale=50.0)
            await client.close()
            await server.close()
            return server, report

        server, report = run(scenario())
        assert report.offered == len(generate_load(spec))
        assert report.served + sum(report.rejected.values()) + report.errored == (
            report.offered
        )
        assert report.served == len(server.journal)
        percentiles = report.percentiles()
        assert set(percentiles) == {"p50", "p99", "p999"}
        assert percentiles["p50"] <= percentiles["p99"] <= percentiles["p999"]
        twin = replay_direct(
            server.journal, build_horam(n_blocks=256, mem_tree_blocks=64, seed=13)
        )
        assert diff_served(server.journal, server.served_by_seq, twin).identical

    def test_slo_judgement(self, run, make_pair):
        spec = LoadSpec(rate_per_s=100, duration_s=0.2, tenants=1, seed=12)

        async def scenario():
            server, client = await make_pair(
                build_horam(n_blocks=512, mem_tree_blocks=128, seed=1)
            )
            server.add_tenant(0)
            report = await run_load(client, spec, time_scale=50.0)
            await client.close()
            await server.close()
            return report

        report = run(scenario())
        generous = report.slo(p50_ms=10_000, p99_ms=10_000, p999_ms=10_000)
        impossible = report.slo(p50_ms=0.0, p99_ms=0.0, p999_ms=0.0)
        assert generous["met"] is True
        assert impossible["met"] is (report.served == 0)
        assert set(generous["measured"]) == {"p50", "p99", "p999"}
