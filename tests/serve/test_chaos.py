"""The chaos proxy and the soak driver built on it.

The proxy's contract: every injected wire fault (reset, mid-frame cut,
blackhole, stall) is survivable by a retrying idempotent client, fault
placement is a deterministic function of the seed, and no amount of
chaos may ever make a retried write execute twice or serve bytes that
diverge from the direct-submit twin.
"""

import asyncio
from collections import Counter

import pytest

from repro.core.horam import build_horam
from repro.serve import (
    ChaosEndpoint,
    ChaosSpec,
    ORAMServer,
    RetryingClient,
    RetryPolicy,
    ServeConfig,
    diff_served,
    drive_through_chaos,
    replay_direct,
)


def _horam(seed=11):
    return build_horam(n_blocks=256, mem_tree_blocks=64, seed=seed)


def _messages(count, seed=11):
    ops = []
    for n in range(count):
        if n % 4 == 3:
            ops.append(
                {
                    "op": "write",
                    "addr": (n * 13) % 200,
                    "data": f"chaos-{n}".encode().hex(),
                    "tenant": n % 2,
                }
            )
        else:
            ops.append({"op": "read", "addr": (n * 7) % 200, "tenant": n % 2})
    return ops


def _policy(**overrides):
    defaults = dict(
        max_attempts=5,
        base_backoff_s=0.001,
        max_backoff_s=0.01,
        request_timeout_s=0.25,
    )
    defaults.update(overrides)
    return RetryPolicy(**defaults)


async def _server(stack, **config):
    server = ORAMServer(stack, ServeConfig(**config))
    server.add_tenant(0)
    server.add_tenant(1)
    return server


class TestChaosSpec:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ChaosSpec(reset_rate=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(drop_rate=-0.1)
        with pytest.raises(ValueError):
            ChaosSpec(stall_s=-1.0)
        with pytest.raises(ValueError):
            ChaosSpec(direction="up")
        with pytest.raises(ValueError):
            ChaosSpec(max_faults_per_conn=-1)

    def test_active(self):
        assert not ChaosSpec().active()
        assert ChaosSpec(drop_rate=0.01).active()
        assert ChaosSpec(stall_rate=0.5).active()

    def test_dict_round_trip(self):
        spec = ChaosSpec(
            seed=5,
            reset_rate=0.1,
            cut_rate=0.05,
            drop_rate=0.02,
            stall_rate=0.2,
            stall_s=0.003,
            direction="s2c",
            max_faults_per_conn=7,
        )
        assert ChaosSpec.from_dict(spec.to_dict()) == spec


class TestProxyBehaviors:
    def test_resets_force_reconnects_yet_serve_everything(self, run):
        """Seeded resets tear connections down abruptly; the retrier
        reconnects its way through and still serves everything.  (The
        rate stays below 1.0 on purpose: each reconnect gets a fresh
        per-connection fault stream, so an always-reset proxy would kill
        every attempt's first frame.)"""

        async def scenario():
            server = await _server(_horam())
            endpoint = ChaosEndpoint(
                server,
                ChaosSpec(seed=3, reset_rate=0.4),
                label="resets",
            )
            retrier = RetryingClient(
                endpoint.connect, policy=_policy(), name="resets"
            )
            responses = [await retrier.read(n, tenant=0) for n in range(3)]
            stats = retrier.stats
            await retrier.close()
            await endpoint.close()
            await server.close()
            return responses, stats, endpoint.stats

        responses, stats, chaos = run(scenario())
        assert all(r["ok"] for r in responses)
        assert chaos.resets == 3  # deterministic for this seed
        assert stats.reconnects == 3
        assert stats.retries == 3

    def test_blackholed_request_times_out_then_succeeds(self, run):
        """Seeded blackholes swallow request frames: the client times
        out, retries, and the stable idempotency key makes the final
        outcome a single execution no matter how many sends it took."""

        async def scenario():
            server = await _server(_horam())
            endpoint = ChaosEndpoint(
                server,
                ChaosSpec(seed=0, drop_rate=0.5, direction="c2s"),
                label="holes",
            )
            retrier = RetryingClient(
                endpoint.connect,
                policy=_policy(request_timeout_s=0.05),
                name="holes",
            )
            response = await retrier.write(9, b"swallowed-once", tenant=0)
            stats = retrier.stats
            await retrier.close()
            await endpoint.close()
            journal = list(server.journal)
            await server.close()
            return response, stats, endpoint.stats, journal

        response, stats, chaos, journal = run(scenario())
        assert response["ok"]
        assert chaos.drops == 3  # deterministic for this seed
        assert stats.retries == 3
        assert len(journal) == 1  # three timeouts, executed exactly once

    def test_mid_frame_cut_fails_promptly_not_hangs(self, run):
        """A plain (non-retrying) client through a cut-everything proxy
        must surface a typed error quickly -- never wait forever."""

        async def scenario():
            server = await _server(_horam())
            endpoint = ChaosEndpoint(
                server,
                ChaosSpec(seed=7, cut_rate=1.0, direction="s2c"),
                label="cuts",
            )
            client = await endpoint.connect()
            from repro.serve import ClientClosed

            with pytest.raises(ClientClosed):
                await asyncio.wait_for(
                    client.request({"op": "read", "addr": 1, "tenant": 0}),
                    timeout=5,
                )
            await client.close()
            await endpoint.close()
            await server.close()
            return endpoint.stats

        chaos = run(scenario())
        assert chaos.cuts == 1

    def test_stalls_delay_but_never_reorder(self, run):
        """Pipelined requests through a stall-everything proxy still come
        back matched to their ids, in order."""

        async def scenario():
            server = await _server(_horam())
            endpoint = ChaosEndpoint(
                server,
                ChaosSpec(seed=9, stall_rate=1.0, stall_s=0.001),
                label="stalls",
            )
            client = await endpoint.connect()
            futures = [
                client.send({"op": "read", "addr": n, "tenant": 0})
                for n in range(6)
            ]
            await client.drain()
            responses = await asyncio.wait_for(
                asyncio.gather(*futures), timeout=10
            )
            await client.close()
            await endpoint.close()
            await server.close()
            return responses, endpoint.stats

        responses, chaos = run(scenario())
        assert all(r["ok"] for r in responses)
        assert [r["id"] for r in responses] == list(range(6))
        assert chaos.stalls >= 6


class _Soak:
    """One full drive_through_chaos soak on a fresh stack."""

    def __init__(self, seed=11, count=40, **drive_kwargs):
        self.seed = seed
        self.count = count
        self.drive_kwargs = drive_kwargs

    async def __call__(self):
        stack = _horam(seed=self.seed)
        server = await _server(stack, max_inflight=32)
        try:
            report = await drive_through_chaos(
                server,
                _messages(self.count, seed=self.seed),
                policy=_policy(),
                **self.drive_kwargs,
            )
        finally:
            await server.close()
        return server, report


class TestDriveThroughChaos:
    CHAOS = ChaosSpec(seed=21, reset_rate=0.06, cut_rate=0.05, drop_rate=0.03)

    def test_same_seed_soaks_match_bit_for_bit(self, run):
        soak = _Soak(clients=3, chaos=self.CHAOS, label="det")
        _, first = run(soak())
        _, second = run(soak())
        assert first.outcome_counts() == second.outcome_counts()
        assert first.retry == second.retry
        assert first.chaos == second.chaos

    def test_exactly_once_and_twin_identical_under_heavy_chaos(self, run):
        server, report = run(
            _Soak(clients=3, chaos=self.CHAOS, label="heavy")()
        )
        counts = report.outcome_counts()
        assert counts.get("ok", 0) > 0
        assert set(counts) <= {"ok", "give_up"}
        # Exactly-once: retried writes never journal twice.
        pairs = Counter(
            (record.tenant, record.idem)
            for record in server.journal
            if record.idem is not None
        )
        assert all(count == 1 for count in pairs.values())
        # Every served byte matches an unchaosed direct-submit twin.
        twin = replay_direct(server.journal, _horam(seed=11))
        diff = diff_served(server.journal, server.served_by_seq, twin)
        assert diff.identical and not diff.unserved

    def test_drain_after_fires_under_load(self, run):
        server, report = run(
            _Soak(clients=3, chaos=self.CHAOS, label="drain", drain_after=20)()
        )
        assert report.drain_report is not None
        assert report.drain_report["escalated"] == 0
        counts = report.outcome_counts()
        assert set(counts) <= {"ok", "draining", "give_up"}
        assert counts.get("ok", 0) >= 20
        # Everything accepted was served; nothing admitted was lost.
        assert report.drain_report["accepted"] == len(server.journal)

    def test_chaos_free_drive_serves_all(self, run):
        server, report = run(_Soak(clients=2, label="clean")())
        assert report.outcome_counts() == {"ok": 40}
        assert report.retry.retries == 0
        assert report.chaos.injected() == 0
        assert len(server.journal) == 40
