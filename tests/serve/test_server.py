"""ORAMServer tests: admission, tenancy, pump, health, twin fidelity."""

import asyncio

import pytest

from repro.core.horam import build_horam
from repro.core.sharding import build_sharded_horam
from repro.oram.base import initial_payload
from repro.serve import (
    ORAMServer,
    ServeClient,
    ServeConfig,
    TenantPolicy,
    diff_served,
    replay_direct,
)
from repro.testing.stacks import StackSpec, build_stack


def _horam(seed=7):
    return build_horam(n_blocks=256, mem_tree_blocks=64, seed=seed)


class TestServing:
    def test_read_returns_initial_payload(self, run, make_pair):
        async def scenario():
            stack = _horam()
            server, client = await make_pair(stack)
            server.add_tenant(0)
            response = await client.read(9, tenant=0)
            await client.close()
            await server.close()
            return stack, response

        stack, response = run(scenario())
        assert response["ok"] is True
        assert response["seq"] == 0
        assert bytes.fromhex(response["data"]) == stack.codec.pad(initial_payload(9))
        assert response["latency_cycles"] >= 0

    def test_write_then_read_round_trips(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0)
            wrote = await client.write(5, b"serving-bytes", tenant=0)
            read = await client.read(5, tenant=0)
            await client.close()
            await server.close()
            return wrote, read

        wrote, read = run(scenario())
        assert wrote["ok"] and read["ok"]
        assert bytes.fromhex(read["data"]).startswith(b"serving-bytes")

    def test_pipelined_responses_match_by_id(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0)
            futures = {
                addr: client.send({"op": "read", "addr": addr, "tenant": 0})
                for addr in (3, 1, 4, 1, 5)
            }
            await client.drain()
            responses = {addr: await f for addr, f in futures.items()}
            await client.close()
            await server.close()
            return responses

        responses = run(scenario())
        assert all(r["ok"] for r in responses.values())
        payloads = {a: bytes.fromhex(r["data"]) for a, r in responses.items()}
        for addr, payload in payloads.items():
            assert payload.endswith(initial_payload(addr)[-4:])

    def test_concurrent_clients_twin_identical(self, run, make_pair):
        async def scenario():
            stack = _horam(seed=11)
            server, client_a = await make_pair(stack)
            server.add_tenant(0)
            server.add_tenant(1)
            import socket as socket_mod

            server_end, client_end = socket_mod.socketpair()
            await server.attach(server_end)
            client_b = await ServeClient.from_socket(client_end)
            futures = []
            for i in range(20):
                futures.append(
                    client_a.send({"op": "read", "addr": i % 7, "tenant": 0})
                )
                futures.append(
                    client_b.send(
                        {
                            "op": "write",
                            "addr": 100 + (i % 5),
                            "data": f"w{i}".encode().hex(),
                            "tenant": 1,
                        }
                    )
                )
                await client_a.drain()
                await client_b.drain()
            responses = await asyncio.gather(*futures)
            await client_a.close()
            await client_b.close()
            await server.close()
            return server, responses

        server, responses = run(scenario())
        assert all(r["ok"] for r in responses)
        assert len(server.journal) == 40
        twin = replay_direct(server.journal, _horam(seed=11))
        diff = diff_served(server.journal, server.served_by_seq, twin)
        assert diff.identical
        assert diff.compared == 40
        assert diff.unserved == []


class TestAdmissionControl:
    def test_overload_rejection_under_pipelined_burst(self, run, make_pair):
        async def scenario():
            stack = _horam()
            config = ServeConfig(max_inflight=2)
            server, client = await make_pair(stack, config)
            server.add_tenant(0)
            futures = [
                client.send({"op": "read", "addr": i, "tenant": 0}) for i in range(12)
            ]
            await client.drain()
            responses = await asyncio.gather(*futures)
            await client.close()
            await server.close()
            return server, responses

        server, responses = run(scenario())
        served = [r for r in responses if r["ok"]]
        overloaded = [
            r for r in responses if not r["ok"] and r["error"] == "overloaded"
        ]
        assert len(served) + len(overloaded) == 12
        assert len(overloaded) >= 1
        assert server.rejections["overloaded"] == len(overloaded)
        # Rejections never reach the journal: accepted == served.
        assert len(server.journal) == len(served)
        twin = replay_direct(server.journal, _horam())
        assert diff_served(server.journal, server.served_by_seq, twin).identical

    def test_quota_exhaustion_is_exact(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0, TenantPolicy(quota=3))
            responses = [await client.read(i, tenant=0) for i in range(5)]
            health = await client.health()
            await client.close()
            await server.close()
            return responses, health

        responses, health = run(scenario())
        assert [r["ok"] for r in responses] == [True, True, True, False, False]
        assert all(r["error"] == "quota_exhausted" for r in responses[3:])
        assert health["tenants"]["0"]["quota_remaining"] == 0
        assert health["tenants"]["0"]["rejections"]["quota_exhausted"] == 2

    def test_rate_limit_refills_with_the_clock(self, run, make_pair, manual_clock):
        async def scenario():
            clock = manual_clock()
            server, client = await make_pair(_horam(), clock=clock)
            server.add_tenant(0, TenantPolicy(rate_per_s=1.0, burst=1))
            first = await client.read(1, tenant=0)
            second = await client.read(2, tenant=0)
            clock.advance(1.5)
            third = await client.read(3, tenant=0)
            await client.close()
            await server.close()
            return first, second, third

        first, second, third = run(scenario())
        assert first["ok"] is True
        assert second["ok"] is False and second["error"] == "rate_limited"
        assert third["ok"] is True

    def test_access_denied_costs_no_token(self, run, make_pair, manual_clock):
        async def scenario():
            clock = manual_clock()
            server, client = await make_pair(_horam(), clock=clock)
            server.add_tenant(
                0, TenantPolicy(allowed=range(0, 8), rate_per_s=1.0, burst=1)
            )
            denied = await client.read(100, tenant=0)
            allowed = await client.read(3, tenant=0)
            await client.close()
            await server.close()
            return denied, allowed

        denied, allowed = run(scenario())
        assert denied["error"] == "access_denied"
        # The deny happened before the token spend: the next request
        # still has its token.
        assert allowed["ok"] is True

    def test_unknown_tenant_and_bad_request(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0)
            unknown = await client.read(1, tenant=9)
            bad_op = await client.request({"op": "wat", "addr": 1, "tenant": 0})
            bad_addr = await client.request({"op": "read", "addr": "x", "tenant": 0})
            no_data = await client.request({"op": "write", "addr": 1, "tenant": 0})
            await client.close()
            await server.close()
            return unknown, bad_op, bad_addr, no_data

        unknown, bad_op, bad_addr, no_data = run(scenario())
        assert unknown["error"] == "unknown_tenant"
        assert "9" in unknown["message"] and "[0]" in unknown["message"]
        assert bad_op["error"] == "bad_request"
        assert bad_addr["error"] == "bad_request"
        assert no_data["error"] == "bad_request"


class TestHealthAndMetrics:
    def test_health_reports_the_slo_fields(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0)
            for i in range(6):
                await client.read(i, tenant=0)
            health = await client.health()
            await client.close()
            await server.close()
            return health

        health = run(scenario())
        wall = health["latency_percentiles"]["wall_ms"]
        assert set(wall) == {"p50", "p99", "p999"}
        assert wall["p50"] > 0
        assert health["latency_percentiles"]["simulated_cycles"] is not None
        assert health["requests"]["served"] == 6
        assert health["requests"]["accepted"] == 6
        assert health["requests"]["inflight"] == 0
        assert health["fenced_shards"] == []
        assert health["tenants"]["0"]["served"] == 6

    def test_metrics_op_returns_backend_metrics(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0)
            await client.read(1, tenant=0)
            metrics = await client.metrics()
            await client.close()
            await server.close()
            return metrics

        metrics = run(scenario())
        assert metrics is not None
        assert metrics["requests_served"] >= 1


class TestShardedServing:
    def test_fenced_stripe_rejected_and_reported(self, run, make_pair):
        async def scenario():
            fleet = build_sharded_horam(
                n_blocks=256, mem_tree_blocks=64, n_shards=2, seed=5
            )
            server, client = await make_pair(fleet)
            server.add_tenant(0)
            before = await client.read(3, tenant=0)  # shard 1
            fleet.fence_shard(1)
            after = await client.read(3, tenant=0)
            live = await client.read(4, tenant=0)  # shard 0 still serves
            health = await client.health()
            await client.close()
            await server.close()
            return before, after, live, health

        before, after, live, health = run(scenario())
        assert before["ok"] is True
        assert after["ok"] is False and after["error"] == "unavailable"
        assert live["ok"] is True
        assert health["fenced_shards"] == [1]
        assert health["load_balance"]["fenced_shards"] == [1]
        assert 1 not in health["load_balance"]["shards"]

    def test_supervised_stack_serves_and_twins(self, run, make_pair):
        async def scenario():
            built = build_stack(
                StackSpec(
                    protocol="sharded", n_blocks=256, mem_blocks=64,
                    n_shards=2, seed=9, supervised=True,
                )
            )
            try:
                server, client = await make_pair(built.driver)
                server.add_tenant(0)
                responses = [await client.read(i, tenant=0) for i in range(8)]
                await client.close()
                await server.close()
                return server, responses
            finally:
                built.cleanup()

        server, responses = run(scenario())
        assert all(r["ok"] for r in responses)
        # The supervised stack must serve the same bytes a bare fleet
        # does -- supervision is invisible to clients.
        twin = replay_direct(
            server.journal,
            build_sharded_horam(n_blocks=256, mem_tree_blocks=64, n_shards=2, seed=9),
        )
        assert diff_served(server.journal, server.served_by_seq, twin).identical


class TestTransportLifecycle:
    def test_tcp_round_trip(self, run):
        async def scenario():
            server = ORAMServer(_horam())
            server.add_tenant(0)
            host, port = await server.start("127.0.0.1", 0)
            client = await ServeClient.connect(host, port)
            response = await client.read(2, tenant=0)
            await client.close()
            await server.close()
            return response

        response = run(scenario())
        assert response["ok"] is True

    def test_close_answers_nothing_pending(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0)
            await client.read(1, tenant=0)
            await client.close()
            await server.close()
            return server

        server = run(scenario())
        assert server.inflight() == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(max_inflight=0)
        with pytest.raises(ValueError):
            TenantPolicy(rate_per_s=0)
        with pytest.raises(ValueError):
            TenantPolicy(quota=-1)
