"""Request lifecycle hardening: deadlines, idempotency, graceful drain.

The server-side half of the failure story: per-request deadlines with
typed cancellation (queued work is withdrawn before the backend sees
it; journaled work executes and is judged late at retirement, keeping
the twin gate exact), exactly-once execution of retried idempotent
requests, and a graceful drain that finishes everything admitted,
refuses everything new, and checkpoints a supervised backend at the
drain boundary.
"""

import asyncio
import socket as socket_mod
from dataclasses import replace as dc_replace

import pytest

from repro.core.horam import build_horam
from repro.serve import (
    ORAMServer,
    ServeClient,
    ServeConfig,
    TenantPolicy,
    diff_served,
    replay_direct,
)
from repro.storage.faults import FaultPlan
from repro.testing.stacks import StackSpec, build_stack


def _horam(seed=7):
    return build_horam(n_blocks=256, mem_tree_blocks=64, seed=seed)


class _SlowStack:
    """Backend wrapper that advances an injected clock per engine step.

    Lets a test make execution take deterministic "wall" time, so the
    late-retirement deadline path fires without real sleeps or races.
    """

    def __init__(self, inner, clock, advance_s):
        self._inner = inner
        self._clock = clock
        self._advance = advance_s

    def submit(self, request):
        return self._inner.submit(request)

    def step(self):
        self._clock.advance(self._advance)
        return self._inner.step()

    def drain(self):
        self._clock.advance(self._advance)
        return self._inner.drain()

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestDeadlines:
    def test_invalid_deadline_rejected(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0)
            bad = await client.request(
                {"op": "read", "addr": 1, "tenant": 0, "deadline_ms": -5}
            )
            await client.close()
            await server.close()
            return bad

        bad = run(scenario())
        assert bad["ok"] is False
        assert bad["error"] == "bad_request"

    def test_queued_request_cancelled_at_deadline(self, run, manual_clock):
        """A request still queued when its deadline lapses is withdrawn:
        never journaled, never executed, answered with a typed error."""

        async def scenario():
            clock = manual_clock()
            server = ORAMServer(_horam(), ServeConfig(), clock=clock)
            server.add_tenant(0)
            # Admit directly (no pump running): the request sits queued.
            rejection, future = server._admit(
                {"op": "read", "addr": 3, "tenant": 0, "deadline_ms": 5.0}
            )
            assert rejection is None
            clock.advance(1.0)
            cancelled = server._cancel_expired()
            response = await asyncio.wait_for(future, timeout=5)
            await server.close()
            return server, cancelled, response

        server, cancelled, response = run(scenario())
        assert cancelled == 1
        assert response["error"] == "deadline_exceeded"
        assert "before execution" in response["message"]
        assert server.deadline_cancelled == 1
        assert server.journal == []  # the backend never saw it
        assert server.front.total_stats().cancelled == 1

    def test_journaled_request_executes_and_is_judged_late(
        self, run, manual_clock
    ):
        """Once journaled, the oblivious schedule owns the request: it
        executes (twin gate intact), the caller gets a typed late error,
        and the committed result is replayable through the idem cache."""

        async def scenario():
            clock = manual_clock()
            stack = _horam(seed=23)
            server = ORAMServer(
                _SlowStack(stack, clock, advance_s=1.0),
                ServeConfig(),
                clock=clock,
            )
            server.add_tenant(0)
            server_end, client_end = socket_mod.socketpair()
            await server.attach(server_end)
            client = await ServeClient.from_socket(client_end)
            late = await client.request(
                {
                    "op": "write",
                    "addr": 5,
                    "data": b"late-bytes".hex(),
                    "tenant": 0,
                    "deadline_ms": 50.0,
                    "idem": "w-5",
                }
            )
            # The retry of the same logical request replays the cached
            # committed result instead of executing again.
            replay = await client.request(
                {
                    "op": "write",
                    "addr": 5,
                    "data": b"late-bytes".hex(),
                    "tenant": 0,
                    "idem": "w-5",
                }
            )
            await client.close()
            await server.close()
            return server, late, replay

        server, late, replay = run(scenario())
        assert late["error"] == "deadline_exceeded"
        assert "after execution" in late["message"]
        assert server.deadline_late == 1
        assert len(server.journal) == 1  # executed exactly once
        assert replay["ok"] is True
        assert replay["replayed"] is True
        assert server.idem_replays == 1
        # The executed-but-late result still enters the twin comparison.
        twin = replay_direct(server.journal, _horam(seed=23))
        diff = diff_served(server.journal, server.served_by_seq, twin)
        assert diff.identical and diff.compared == 1

    def test_default_deadline_from_config(self, run, manual_clock):
        async def scenario():
            clock = manual_clock()
            server = ORAMServer(
                _horam(), ServeConfig(default_deadline_ms=5.0), clock=clock
            )
            server.add_tenant(0)
            rejection, future = server._admit({"op": "read", "addr": 1, "tenant": 0})
            assert rejection is None
            clock.advance(1.0)
            cancelled = server._cancel_expired()
            await asyncio.wait_for(future, timeout=5)
            await server.close()
            return cancelled

        assert run(scenario()) == 1


class TestIdempotency:
    def test_duplicate_idem_replays_not_reexecutes(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0)
            message = {
                "op": "write",
                "addr": 7,
                "data": b"once".hex(),
                "tenant": 0,
                "idem": "k1",
            }
            first = await client.request(dict(message))
            second = await client.request(dict(message))
            health = await client.health()
            await client.close()
            await server.close()
            return server, first, second, health

        server, first, second, health = run(scenario())
        assert first["ok"] and second["ok"]
        assert "replayed" not in first
        assert second["replayed"] is True
        assert second["data"] == first["data"]
        assert second["seq"] == first["seq"]
        assert len(server.journal) == 1
        assert server.journal[0].idem == "k1"
        assert health["requests"]["idem_replays"] == 1

    def test_pipelined_duplicates_execute_once(self, run, make_pair):
        """Two copies racing on the wire: one executes, the other joins
        the in-flight execution or replays the cached result."""

        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0)
            message = {
                "op": "write",
                "addr": 9,
                "data": b"race".hex(),
                "tenant": 0,
                "idem": "k-race",
            }
            futures = [client.send(dict(message)), client.send(dict(message))]
            await client.drain()
            responses = await asyncio.gather(*futures)
            await client.close()
            await server.close()
            return server, responses

        server, responses = run(scenario())
        assert all(r["ok"] for r in responses)
        assert responses[0]["data"] == responses[1]["data"]
        assert len(server.journal) == 1
        assert server.idem_joins + server.idem_replays == 1

    def test_idem_keys_are_tenant_scoped(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0)
            server.add_tenant(1)
            a = await client.request(
                {"op": "read", "addr": 3, "tenant": 0, "idem": "same"}
            )
            b = await client.request(
                {"op": "read", "addr": 3, "tenant": 1, "idem": "same"}
            )
            await client.close()
            await server.close()
            return server, a, b

        server, a, b = run(scenario())
        assert a["ok"] and b["ok"]
        assert "replayed" not in b  # different tenant: a fresh execution
        assert len(server.journal) == 2

    def test_cache_retention_is_bounded(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(
                _horam(), ServeConfig(idem_cache_size=2)
            )
            server.add_tenant(0)
            for n in range(4):
                await client.request(
                    {"op": "read", "addr": n, "tenant": 0, "idem": f"k{n}"}
                )
            evicted = await client.request(
                {"op": "read", "addr": 0, "tenant": 0, "idem": "k0"}
            )
            fresh = await client.request(
                {"op": "read", "addr": 3, "tenant": 0, "idem": "k3"}
            )
            await client.close()
            await server.close()
            return server, evicted, fresh

        server, evicted, fresh = run(scenario())
        # k0 aged out of the bounded cache: the retry re-executes (the
        # documented retention tradeoff); k3 is still cached and replays.
        assert evicted["ok"] and "replayed" not in evicted
        assert fresh["ok"] and fresh["replayed"] is True
        assert len(server._idem_cache) <= 2

    def test_bad_idem_rejected(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0)
            bad = await client.request(
                {"op": "read", "addr": 1, "tenant": 0, "idem": ""}
            )
            await client.close()
            await server.close()
            return bad

        bad = run(scenario())
        assert bad["error"] == "bad_request"


class TestGracefulDrain:
    def test_drain_refuses_new_work_with_typed_error(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0)
            before = await client.read(1, tenant=0)
            report = await server.drain()
            after = await client.request({"op": "read", "addr": 2, "tenant": 0})
            health = await client.health()
            await client.close()
            await server.close()
            return before, report, after, health

        before, report, after, health = run(scenario())
        assert before["ok"]
        assert report["escalated"] == 0
        assert report["accepted"] == 1 and report["served"] == 1
        assert after["error"] == "draining"
        assert health["draining"] is True

    def test_drain_under_load_loses_nothing(self, run, make_pair):
        """Every admitted request retires and answers; late arrivals get
        the typed rejection; the journal equals the served set."""

        async def scenario():
            stack = _horam(seed=31)
            server, client = await make_pair(stack)
            server.add_tenant(0)
            futures = [
                client.send({"op": "read", "addr": n % 50, "tenant": 0})
                for n in range(24)
            ]
            await client.drain()
            report = await server.drain()
            responses = await asyncio.gather(*futures)
            await client.close()
            await server.close()
            return server, report, responses

        server, report, responses = run(scenario())
        assert all(f is not None for f in responses)
        ok = [r for r in responses if r["ok"]]
        refused = [r for r in responses if not r["ok"]]
        assert all(r["error"] == "draining" for r in refused)
        assert len(ok) == len(server.journal) == report["accepted"]
        assert report["escalated"] == 0
        twin = replay_direct(server.journal, _horam(seed=31))
        diff = diff_served(server.journal, server.served_by_seq, twin)
        assert diff.identical and not diff.unserved

    def test_drain_escalates_past_hard_deadline(self, run, manual_clock):
        async def scenario():
            clock = manual_clock()
            server = ORAMServer(_horam(), ServeConfig(), clock=clock)
            server.add_tenant(0)
            rejection, future = server._admit({"op": "read", "addr": 1, "tenant": 0})
            assert rejection is None
            report = await server.drain(timeout_s=0.0)
            response = await asyncio.wait_for(future, timeout=5)
            await server.close()
            return report, response

        report, response = run(scenario())
        assert report["escalated"] == 1
        assert response["error"] == "shutting_down"

    def test_drain_checkpoints_supervised_backend_bit_identically(self, run):
        """The drain-time checkpoint is the restart point: a shard crash
        after drain restores from it and serves the same bytes as the
        direct-submit twin."""

        spec = StackSpec(
            protocol="sharded",
            n_blocks=512,
            n_shards=2,
            seed=41,
            supervised=True,
            checkpoint_every_ops=10_000,  # only the drain hook checkpoints
            max_restarts=2,
        )
        stack = build_stack(spec)
        try:

            async def scenario():
                server = ORAMServer(stack.driver, ServeConfig())
                server.add_tenant(0)
                server_end, client_end = socket_mod.socketpair()
                await server.attach(server_end)
                client = await ServeClient.from_socket(client_end)
                for n in range(12):
                    response = await client.write(
                        n * 17 % 512, f"drain-{n}".encode(), tenant=0
                    )
                    assert response["ok"]
                report = await server.drain()
                await client.close()
                await server.close()
                return server, report

            server, report = run(scenario())
            assert report["checkpointed_shards"] == 2
            assert report["escalated"] == 0

            # Kill both shards on their next op: recovery must come from
            # the drain-time checkpoint, not from replaying served work.
            stack.install_faults(FaultPlan(seed=41, crash_schedule=[1]))
            twin = build_stack(dc_replace(spec, supervised=False))
            try:
                twin_served = replay_direct(server.journal, twin.driver)
                diff = diff_served(server.journal, server.served_by_seq, twin_served)
                assert diff.identical and not diff.unserved
                for record in server.journal:
                    assert stack.driver.read(record.addr) == twin.driver.read(
                        record.addr
                    )
            finally:
                twin.cleanup()
            recovery = stack.supervisor.recovery_report()
            assert recovery["restores"] >= 1
            assert sorted(stack.supervisor.fenced) == []
        finally:
            stack.cleanup()
