"""Client failure paths: dead transports, duplicate ids, retries.

The serving client's contract under failure: a send on a dead
connection raises a typed :class:`ClientClosed` (never a silent write
into a dead socket), a caller-supplied ``id`` colliding with an
in-flight request is refused (never a silently leaked waiter), stray
response frames are counted rather than dropped on the floor, and the
:class:`RetryingClient` turns all of it into bounded, deterministic,
idempotent retries.
"""

import asyncio
import socket as socket_mod

import pytest

from repro.core.horam import build_horam
from repro.crypto.random import DeterministicRandom
from repro.serve import (
    ClientClosed,
    DuplicateRequestId,
    RetryingClient,
    RetryPolicy,
    ServeClient,
    encode_frame,
)


def _horam(seed=7):
    return build_horam(n_blocks=256, mem_tree_blocks=64, seed=seed)


async def _raw_client():
    """A ServeClient whose peer is the test itself (no server)."""
    ours, theirs = socket_mod.socketpair()
    client = await ServeClient.from_socket(ours)
    return client, theirs


async def _settle(client, spins=100):
    """Yield until the client's read loop observes its transport state."""
    for _ in range(spins):
        if client.closed:
            return
        await asyncio.sleep(0)


class TestDeadTransport:
    def test_send_after_peer_close_raises_client_closed(self, run):
        """The read loop marks the client closed on EOF; a send racing in
        after that gets a typed error instead of writing into the void."""

        async def scenario():
            client, peer = await _raw_client()
            peer.close()
            await _settle(client)
            assert client.closed
            with pytest.raises(ClientClosed):
                client.send({"op": "read", "addr": 0, "tenant": 0})
            await client.close()

        run(scenario())

    def test_pipelined_waiters_all_fail_on_transport_death(self, run):
        async def scenario():
            client, peer = await _raw_client()
            futures = [
                client.send({"op": "read", "addr": addr, "tenant": 0})
                for addr in range(5)
            ]
            await client.drain()
            peer.close()
            results = await asyncio.wait_for(
                asyncio.gather(*futures, return_exceptions=True), timeout=5
            )
            await client.close()
            return results

        results = run(scenario())
        assert len(results) == 5
        assert all(isinstance(r, ClientClosed) for r in results)

    def test_mid_frame_eof_is_protocol_error_not_hang(self, run):
        """A peer dying mid-frame must fail the waiter promptly, with the
        protocol violation named in the error -- never a silent hang."""

        async def scenario():
            client, peer = await _raw_client()
            future = client.send({"op": "read", "addr": 1, "tenant": 0})
            await client.drain()
            peer.recv(65536)  # consume the request so close() is a clean FIN
            # A header promising 64 bytes, then only 8, then death.
            peer.sendall((64).to_bytes(4, "big") + b"x" * 8)
            peer.close()
            with pytest.raises(ClientClosed) as caught:
                await asyncio.wait_for(future, timeout=5)
            await client.close()
            return caught.value

        error = run(scenario())
        assert "ProtocolError" in str(error) or "mid-frame" in str(error)


class TestDuplicateIds:
    def test_duplicate_inflight_id_refused(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0)
            first = client.send({"op": "read", "addr": 1, "tenant": 0, "id": 77})
            with pytest.raises(DuplicateRequestId) as caught:
                client.send({"op": "read", "addr": 2, "tenant": 0, "id": 77})
            assert caught.value.msg_id == 77
            response = await first
            # The id is free again once its response has arrived.
            again = await client.request(
                {"op": "read", "addr": 2, "tenant": 0, "id": 77}
            )
            await client.close()
            await server.close()
            return response, again

        response, again = run(scenario())
        assert response["ok"] and again["ok"]


class TestUnmatchedResponses:
    def test_stray_response_frames_are_counted(self, run):
        async def scenario():
            client, peer = await _raw_client()
            future = client.send({"op": "read", "addr": 1, "tenant": 0})
            await client.drain()
            # Two responses nobody asked for, then the real one.
            peer.sendall(encode_frame({"id": 999, "ok": True}))
            peer.sendall(encode_frame({"id": 998, "ok": True}))
            peer.sendall(encode_frame({"id": 0, "ok": True, "data": ""}))
            response = await asyncio.wait_for(future, timeout=5)
            counted = client.unmatched_responses
            peer.close()
            await client.close()
            return response, counted

        response, counted = run(scenario())
        assert response["ok"]
        assert counted == 2

    def test_health_exposes_client_counters(self, run, make_pair):
        async def scenario():
            server, client = await make_pair(_horam())
            server.add_tenant(0)
            client.unmatched_responses = 3  # as counted by the read loop
            health = await client.health()
            await client.close()
            await server.close()
            return health

        health = run(scenario())
        assert health["client"]["unmatched_responses"] == 3


class _StubClient:
    """Scripted stand-in for ServeClient: each request pops one action."""

    def __init__(self, script, log):
        self.script = script
        self.log = log
        self.closed = False

    async def request(self, message):
        self.log.append(dict(message))
        action = self.script.pop(0)
        if action == "hang":
            await asyncio.Event().wait()
        if isinstance(action, Exception):
            self.closed = True
            raise action
        return action

    async def close(self):
        self.closed = True


def _stub_factory(scripts, log):
    """Connect factory handing out one scripted client per connection."""
    remaining = list(scripts)

    async def connect():
        return _StubClient(remaining.pop(0), log)

    return connect


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            base_backoff_s=0.01, backoff_factor=2.0, max_backoff_s=0.05, jitter=0.5
        )
        first = [
            policy.backoff_s(n, DeterministicRandom("backoff-seed"))
            for n in range(1, 6)
        ]
        second = [
            policy.backoff_s(n, DeterministicRandom("backoff-seed"))
            for n in range(1, 6)
        ]
        assert first == second
        for attempt, sleep in enumerate(first, start=1):
            raw = min(0.05, 0.01 * 2.0 ** (attempt - 1))
            assert raw * 0.5 <= sleep <= raw * 1.5


class TestRetryingClient:
    def _policy(self, **overrides):
        defaults = dict(
            max_attempts=3,
            base_backoff_s=0.0,
            max_backoff_s=0.0,
            request_timeout_s=0.1,
        )
        defaults.update(overrides)
        return RetryPolicy(**defaults)

    def test_retriable_rejection_is_retried_to_success(self, run):
        log = []
        script = [
            {"ok": False, "error": "overloaded", "message": "busy"},
            {"ok": True, "data": "00"},
        ]
        retrier = RetryingClient(
            _stub_factory([script], log), policy=self._policy(), name="t1"
        )
        response = run(retrier.read(3, tenant=0))
        assert response["ok"]
        assert retrier.stats.retries == 1
        assert retrier.stats.sends == 2
        assert retrier.stats.give_ups == 0

    def test_terminal_rejection_returned_immediately(self, run):
        log = []
        script = [{"ok": False, "error": "quota_exhausted", "message": "no"}]
        retrier = RetryingClient(
            _stub_factory([script], log), policy=self._policy(), name="t2"
        )
        response = run(retrier.read(3, tenant=0))
        assert response["error"] == "quota_exhausted"
        assert retrier.stats.retries == 0

    def test_transport_death_reconnects_with_stable_idem_key(self, run):
        log = []
        scripts = [
            [ClientClosed("gone")],
            [{"ok": True, "data": "00", "replayed": True}],
        ]
        retrier = RetryingClient(
            _stub_factory(scripts, log), policy=self._policy(), name="t3"
        )
        response = run(retrier.write(5, b"x", tenant=0))
        assert response["ok"]
        assert retrier.stats.reconnects == 1
        assert retrier.stats.replayed == 1
        # Both attempts carried the same idempotency key and no stale id.
        assert len(log) == 2
        assert log[0]["idem"] == log[1]["idem"]
        assert "id" not in log[0] and "id" not in log[1]

    def test_blackhole_times_out_and_gives_up(self, run):
        log = []
        scripts = [["hang"], ["hang"], ["hang"]]
        retrier = RetryingClient(
            _stub_factory(scripts, log), policy=self._policy(), name="t4"
        )
        response = run(retrier.read(1, tenant=0))
        assert response["error"] == "give_up"
        assert retrier.stats.give_ups == 1
        assert retrier.stats.sends == 3

    def test_retry_budget_caps_amplification(self, run):
        log = []
        scripts = [[ClientClosed("gone")] for _ in range(4)]
        retrier = RetryingClient(
            _stub_factory(scripts, log),
            policy=self._policy(max_attempts=4, retry_budget=1),
            name="t5",
        )
        response = run(retrier.read(1, tenant=0))
        assert response["error"] == "give_up"
        assert retrier.stats.sends == 2  # first attempt + the one budgeted retry
        assert retrier.stats.retries == 1

    def test_end_to_end_against_real_server(self, run, make_pair):
        """Idempotent writes through the retrier against a live server."""

        async def scenario():
            stack = _horam(seed=19)
            server, seed_client = await make_pair(stack)
            await seed_client.close()
            server.add_tenant(0)

            async def connect():
                server_end, client_end = socket_mod.socketpair()
                await server.attach(server_end)
                return await ServeClient.from_socket(client_end)

            retrier = RetryingClient(connect, policy=self._policy(), name="e2e")
            wrote = await retrier.write(9, b"retried-bytes", tenant=0)
            read = await retrier.read(9, tenant=0)
            await retrier.close()
            await server.close()
            return server, wrote, read

        server, wrote, read = run(scenario())
        assert wrote["ok"] and read["ok"]
        assert bytes.fromhex(read["data"]).startswith(b"retried-bytes")
        assert all(record.idem is not None for record in server.journal)
