"""Wire-framing tests: length-prefixed JSON frames."""

import asyncio
import struct

import pytest

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    from_hex,
    read_frame,
    to_hex,
)


def _reader_with(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def _read(data: bytes):
    async def scenario():
        return await read_frame(_reader_with(data))

    return asyncio.run(scenario())


class TestFraming:
    def test_round_trip(self):
        message = {"id": 7, "op": "read", "addr": 3, "tenant": 0}
        assert _read(encode_frame(message)) == message

    def test_pipelined_frames_parse_in_order(self):
        wire = encode_frame({"id": 1}) + encode_frame({"id": 2})

        async def scenario():
            reader = _reader_with(wire)
            return [await read_frame(reader), await read_frame(reader)]

        assert [m["id"] for m in asyncio.run(scenario())] == [1, 2]

    def test_clean_eof_returns_none(self):
        assert _read(b"") is None

    def test_eof_mid_header_raises(self):
        with pytest.raises(ProtocolError, match="mid-header"):
            _read(b"\x00\x00")

    def test_eof_mid_frame_raises(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            _read(struct.pack(">I", 10) + b"{}")

    def test_oversize_frame_rejected_before_reading_body(self):
        with pytest.raises(ProtocolError, match="cap"):
            _read(struct.pack(">I", MAX_FRAME_BYTES + 1))

    def test_undecodable_body_raises(self):
        body = b"not json"
        with pytest.raises(ProtocolError, match="undecodable"):
            _read(struct.pack(">I", len(body)) + body)

    def test_non_object_body_raises(self):
        body = b"[1,2]"
        with pytest.raises(ProtocolError, match="JSON object"):
            _read(struct.pack(">I", len(body)) + body)

    def test_encode_rejects_oversize_payload(self):
        with pytest.raises(ProtocolError, match="cap"):
            encode_frame({"data": "ff" * MAX_FRAME_BYTES})


class TestHexHelpers:
    def test_round_trip(self):
        assert from_hex(to_hex(b"\x00\xffab")) == b"\x00\xffab"

    def test_none_passthrough(self):
        assert to_hex(None) is None
        assert from_hex(None) is None

    def test_invalid_hex_raises(self):
        with pytest.raises(ProtocolError, match="hex"):
            from_hex("zz")
