"""Shared helpers for the serving-tier tests: in-process socketpairs."""

import asyncio
import socket
import time

import pytest

from repro.serve import ORAMServer, ServeClient


class ManualClock:
    """Injectable clock so rate-limit tests are fully deterministic."""

    def __init__(self, start: float = 0.0):
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


async def _make_pair(stack, config=None, clock=time.monotonic):
    """An ORAMServer and a connected ServeClient over a socketpair."""
    server = ORAMServer(stack, config, clock=clock)
    server_end, client_end = socket.socketpair()
    await server.attach(server_end)
    client = await ServeClient.from_socket(client_end)
    return server, client


@pytest.fixture
def make_pair():
    return _make_pair


@pytest.fixture
def manual_clock():
    return ManualClock


@pytest.fixture
def run():
    """Run one async scenario to completion (no pytest-asyncio here)."""
    return lambda coro: asyncio.run(coro)
