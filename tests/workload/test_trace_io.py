"""Request trace save/load tests."""

import pytest

from repro.crypto.random import DeterministicRandom
from repro.oram.base import OpKind, Request
from repro.workload.generators import read_write_mix
from repro.workload.trace import load_trace, save_trace


class TestRoundTrip:
    def test_mixed_trace(self, tmp_path):
        path = tmp_path / "trace.txt"
        original = list(read_write_mix(100, 60, DeterministicRandom(1), write_ratio=0.5))
        count = save_trace(path, original)
        assert count == 60
        loaded = load_trace(path)
        assert len(loaded) == 60
        for a, b in zip(original, loaded):
            assert (a.op, a.addr, a.data) == (b.op, b.addr, b.data)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.txt"
        save_trace(path, [])
        assert load_trace(path) == []

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\nR 5\nW 6 68656c6c6f\n")
        loaded = load_trace(path)
        assert loaded[0].op is OpKind.READ and loaded[0].addr == 5
        assert loaded[1].op is OpKind.WRITE and loaded[1].data == b"hello"

    def test_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("R 5\nX nope\n")
        with pytest.raises(ValueError, match="bad.txt:2"):
            load_trace(path)

    def test_bad_hex_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("W 5 zz\n")
        with pytest.raises(ValueError):
            load_trace(path)
