"""Workload generator tests."""

import pytest

from repro.crypto.random import DeterministicRandom
from repro.oram.base import OpKind
from repro.workload.generators import (
    WorkloadSpec,
    explicit,
    hotspot,
    make_workload,
    read_write_mix,
    sequential_scan,
    single_block,
    stride,
    uniform,
    workload_kinds,
    write_storm,
    zipfian,
)


class TestHotspot:
    def test_count_and_bounds(self):
        rng = DeterministicRandom(1)
        requests = list(hotspot(1000, 500, rng))
        assert len(requests) == 500
        assert all(0 <= r.addr < 1000 for r in requests)

    def test_hot_share_near_probability(self):
        rng = DeterministicRandom(1)
        requests = list(hotspot(10_000, 4000, rng, hot_blocks=100, hot_probability=0.8))
        hot = sum(1 for r in requests if r.addr < 100)
        # 80% target plus the uniform tail's 1% contribution.
        assert 0.74 < hot / len(requests) < 0.87

    def test_hot_blocks_clamped(self):
        rng = DeterministicRandom(1)
        requests = list(hotspot(10, 100, rng, hot_blocks=1000))
        assert all(r.addr < 10 for r in requests)

    def test_deterministic(self):
        a = [r.addr for r in hotspot(100, 50, DeterministicRandom(2))]
        b = [r.addr for r in hotspot(100, 50, DeterministicRandom(2))]
        assert a == b

    def test_reads_only_by_default(self):
        requests = list(hotspot(100, 50, DeterministicRandom(2)))
        assert all(r.op is OpKind.READ for r in requests)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(hotspot(100, 10, DeterministicRandom(1), hot_probability=0.0))


class TestUniform:
    def test_spreads_over_space(self):
        requests = list(uniform(100, 2000, DeterministicRandom(3)))
        seen = {r.addr for r in requests}
        assert len(seen) > 90


class TestZipfian:
    def test_skew_toward_low_ranks(self):
        requests = list(zipfian(1000, 3000, DeterministicRandom(4), theta=0.99))
        top10 = sum(1 for r in requests if r.addr < 10)
        assert top10 / len(requests) > 0.2  # heavy head

    def test_higher_theta_more_skew(self):
        mild = list(zipfian(1000, 3000, DeterministicRandom(4), theta=0.5))
        steep = list(zipfian(1000, 3000, DeterministicRandom(4), theta=1.2))
        head = lambda reqs: sum(1 for r in reqs if r.addr < 10)
        assert head(steep) > head(mild)

    def test_theta_bounds(self):
        with pytest.raises(ValueError):
            list(zipfian(10, 5, DeterministicRandom(1), theta=2.5))


class TestScan:
    def test_wraps_around(self):
        requests = list(sequential_scan(10, 25, DeterministicRandom(5), start=8))
        assert [r.addr for r in requests[:4]] == [8, 9, 0, 1]
        assert len(requests) == 25


class TestMix:
    def test_write_ratio_honored(self):
        requests = list(read_write_mix(100, 2000, DeterministicRandom(6), write_ratio=0.5))
        writes = sum(1 for r in requests if r.op is OpKind.WRITE)
        assert 0.42 < writes / len(requests) < 0.58
        for r in requests:
            if r.op is OpKind.WRITE:
                assert r.data


class TestSpec:
    def test_make_workload(self):
        spec = WorkloadSpec(kind="hotspot", n_blocks=100, count=50, seed=7)
        requests = make_workload(spec)
        assert len(requests) == 50

    def test_spec_params_forwarded(self):
        spec = WorkloadSpec(
            kind="hotspot", n_blocks=100, count=200, seed=7, params={"hot_blocks": 5}
        )
        requests = make_workload(spec)
        hot = sum(1 for r in requests if r.addr < 5)
        assert hot > 120

    def test_spec_write_ratio(self):
        spec = WorkloadSpec(kind="uniform", n_blocks=50, count=200, seed=7, write_ratio=0.4)
        requests = make_workload(spec)
        assert any(r.op is OpKind.WRITE for r in requests)

    def test_unknown_kind_names_valid_kinds(self):
        """The error must name the offending kind and every valid kind."""
        with pytest.raises(ValueError, match="unknown workload kind 'bogus'") as excinfo:
            make_workload(WorkloadSpec(kind="bogus"))
        message = str(excinfo.value)
        for kind in workload_kinds():
            assert kind in message

    def test_workload_kinds_cover_registry(self):
        assert {"hotspot", "uniform", "zipfian", "scan", "mix",
                "single_block", "stride", "write_storm", "explicit"} <= set(workload_kinds())

    def test_same_spec_same_stream(self):
        spec = WorkloadSpec(kind="zipfian", n_blocks=64, count=64, seed=11)
        assert [r.addr for r in make_workload(spec)] == [
            r.addr for r in make_workload(spec)
        ]

    def test_write_ratio_not_forwarded_where_unsupported(self):
        """write_storm/explicit have no read/write knob; a spec carrying a
        write_ratio must still materialize instead of raising TypeError."""
        storm = make_workload(
            WorkloadSpec(kind="write_storm", n_blocks=64, count=20, write_ratio=0.5)
        )
        assert all(r.op is OpKind.WRITE for r in storm)


class TestAdversarialGenerators:
    def test_single_block_hits_one_target(self):
        requests = list(single_block(100, 50, DeterministicRandom(1), target=42))
        assert {r.addr for r in requests} == {42}
        with pytest.raises(ValueError):
            list(single_block(10, 5, DeterministicRandom(1), target=10))

    def test_stride_aliases_onto_one_shard(self):
        requests = list(stride(1024, 40, DeterministicRandom(1), step=4))
        assert all(r.addr % 4 == 0 for r in requests)
        assert len({r.addr for r in requests}) == 40
        with pytest.raises(ValueError):
            list(stride(10, 5, DeterministicRandom(1), step=0))

    def test_write_storm_is_all_writes_in_hot_region(self):
        requests = list(write_storm(1024, 60, DeterministicRandom(2)))
        assert all(r.op is OpKind.WRITE and r.data for r in requests)
        assert all(r.addr < 128 for r in requests)  # n_blocks // 8


class TestExplicit:
    def test_replays_literal_stream(self):
        items = [["r", 3], ["w", 5, b"hi".hex()], ["r", 5]]
        requests = list(explicit(10, 0, DeterministicRandom(1), requests=items))
        assert [(r.op, r.addr) for r in requests] == [
            (OpKind.READ, 3), (OpKind.WRITE, 5), (OpKind.READ, 5),
        ]
        assert requests[1].data == b"hi"

    def test_validation(self):
        with pytest.raises(ValueError, match="outside"):
            list(explicit(4, 0, DeterministicRandom(1), requests=[["r", 9]]))
        with pytest.raises(ValueError, match="'r' or 'w'"):
            list(explicit(4, 0, DeterministicRandom(1), requests=[["x", 1]]))

    def test_via_make_workload(self):
        spec = WorkloadSpec(
            kind="explicit", n_blocks=8, count=2, params={"requests": [["r", 1], ["r", 2]]}
        )
        assert [r.addr for r in make_workload(spec)] == [1, 2]
