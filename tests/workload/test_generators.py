"""Workload generator tests."""

import pytest

from repro.crypto.random import DeterministicRandom
from repro.oram.base import OpKind
from repro.workload.generators import (
    WorkloadSpec,
    hotspot,
    make_workload,
    read_write_mix,
    sequential_scan,
    uniform,
    zipfian,
)


class TestHotspot:
    def test_count_and_bounds(self):
        rng = DeterministicRandom(1)
        requests = list(hotspot(1000, 500, rng))
        assert len(requests) == 500
        assert all(0 <= r.addr < 1000 for r in requests)

    def test_hot_share_near_probability(self):
        rng = DeterministicRandom(1)
        requests = list(hotspot(10_000, 4000, rng, hot_blocks=100, hot_probability=0.8))
        hot = sum(1 for r in requests if r.addr < 100)
        # 80% target plus the uniform tail's 1% contribution.
        assert 0.74 < hot / len(requests) < 0.87

    def test_hot_blocks_clamped(self):
        rng = DeterministicRandom(1)
        requests = list(hotspot(10, 100, rng, hot_blocks=1000))
        assert all(r.addr < 10 for r in requests)

    def test_deterministic(self):
        a = [r.addr for r in hotspot(100, 50, DeterministicRandom(2))]
        b = [r.addr for r in hotspot(100, 50, DeterministicRandom(2))]
        assert a == b

    def test_reads_only_by_default(self):
        requests = list(hotspot(100, 50, DeterministicRandom(2)))
        assert all(r.op is OpKind.READ for r in requests)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(hotspot(100, 10, DeterministicRandom(1), hot_probability=0.0))


class TestUniform:
    def test_spreads_over_space(self):
        requests = list(uniform(100, 2000, DeterministicRandom(3)))
        seen = {r.addr for r in requests}
        assert len(seen) > 90


class TestZipfian:
    def test_skew_toward_low_ranks(self):
        requests = list(zipfian(1000, 3000, DeterministicRandom(4), theta=0.99))
        top10 = sum(1 for r in requests if r.addr < 10)
        assert top10 / len(requests) > 0.2  # heavy head

    def test_higher_theta_more_skew(self):
        mild = list(zipfian(1000, 3000, DeterministicRandom(4), theta=0.5))
        steep = list(zipfian(1000, 3000, DeterministicRandom(4), theta=1.2))
        head = lambda reqs: sum(1 for r in reqs if r.addr < 10)
        assert head(steep) > head(mild)

    def test_theta_bounds(self):
        with pytest.raises(ValueError):
            list(zipfian(10, 5, DeterministicRandom(1), theta=2.5))


class TestScan:
    def test_wraps_around(self):
        requests = list(sequential_scan(10, 25, DeterministicRandom(5), start=8))
        assert [r.addr for r in requests[:4]] == [8, 9, 0, 1]
        assert len(requests) == 25


class TestMix:
    def test_write_ratio_honored(self):
        requests = list(read_write_mix(100, 2000, DeterministicRandom(6), write_ratio=0.5))
        writes = sum(1 for r in requests if r.op is OpKind.WRITE)
        assert 0.42 < writes / len(requests) < 0.58
        for r in requests:
            if r.op is OpKind.WRITE:
                assert r.data


class TestSpec:
    def test_make_workload(self):
        spec = WorkloadSpec(kind="hotspot", n_blocks=100, count=50, seed=7)
        requests = make_workload(spec)
        assert len(requests) == 50

    def test_spec_params_forwarded(self):
        spec = WorkloadSpec(
            kind="hotspot", n_blocks=100, count=200, seed=7, params={"hot_blocks": 5}
        )
        requests = make_workload(spec)
        hot = sum(1 for r in requests if r.addr < 5)
        assert hot > 120

    def test_spec_write_ratio(self):
        spec = WorkloadSpec(kind="uniform", n_blocks=50, count=200, seed=7, write_ratio=0.4)
        requests = make_workload(spec)
        assert any(r.op is OpKind.WRITE for r in requests)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_workload(WorkloadSpec(kind="bogus"))

    def test_same_spec_same_stream(self):
        spec = WorkloadSpec(kind="zipfian", n_blocks=64, count=64, seed=11)
        assert [r.addr for r in make_workload(spec)] == [
            r.addr for r in make_workload(spec)
        ]
