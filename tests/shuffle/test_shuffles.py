"""Shuffle algorithm tests: permutation property, obliviousness, costs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.random import DeterministicRandom
from repro.shuffle import get_shuffle, shuffle_names
from repro.shuffle.bitonic import BitonicShuffle
from repro.shuffle.cache_shuffle import CacheShuffle
from repro.shuffle.fisher_yates import FisherYatesShuffle
from repro.shuffle.melbourne import MelbourneShuffle

ALL_ALGORITHMS = [CacheShuffle, MelbourneShuffle, BitonicShuffle, FisherYatesShuffle]


@pytest.fixture(params=ALL_ALGORITHMS, ids=lambda c: c.name)
def algorithm(request):
    return request.param()


class TestPermutationProperty:
    @given(st.lists(st.integers(), max_size=80))
    @settings(max_examples=25, deadline=None)
    def test_output_is_permutation(self, items):
        for cls in ALL_ALGORITHMS:
            result = cls().shuffle(items, DeterministicRandom(9))
            assert sorted(result.items) == sorted(items)

    def test_empty_and_singleton(self, algorithm):
        assert algorithm.shuffle([], DeterministicRandom(1)).items == []
        assert algorithm.shuffle(["x"], DeterministicRandom(1)).items == ["x"]

    def test_actually_shuffles(self, algorithm):
        items = list(range(200))
        result = algorithm.shuffle(items, DeterministicRandom(2))
        assert result.items != items  # P(identity) is astronomically small

    def test_deterministic_given_rng(self, algorithm):
        items = list(range(50))
        a = type(algorithm)().shuffle(items, DeterministicRandom(3)).items
        b = type(algorithm)().shuffle(items, DeterministicRandom(3)).items
        assert a == b

    def test_first_position_roughly_uniform(self, algorithm):
        # Over many seeds, element 0 of the output should vary broadly.
        counts = {}
        for seed in range(120):
            out = type(algorithm)().shuffle(list(range(6)), DeterministicRandom(seed)).items
            counts[out[0]] = counts.get(out[0], 0) + 1
        assert len(counts) == 6
        assert max(counts.values()) < 50  # expectation 20


class TestCosts:
    def test_moves_reported(self, algorithm):
        result = algorithm.shuffle(list(range(100)), DeterministicRandom(4))
        assert result.moves > 0

    def test_cache_shuffle_linear_moves(self):
        result = CacheShuffle().shuffle(list(range(1000)), DeterministicRandom(4))
        assert result.moves == pytest.approx(3000, rel=0.01)

    def test_bitonic_moves_superlinear(self):
        small = BitonicShuffle().shuffle(list(range(256)), DeterministicRandom(4)).moves
        big = BitonicShuffle().shuffle(list(range(1024)), DeterministicRandom(4)).moves
        # n log^2 n growth: 4x the items -> more than 4x the moves.
        assert big > 4 * small

    def test_expected_moves_close_to_actual(self):
        for cls in (CacheShuffle, FisherYatesShuffle, BitonicShuffle):
            algorithm = cls()
            actual = algorithm.shuffle(list(range(512)), DeterministicRandom(4)).moves
            assert actual <= algorithm.expected_moves(512) * 1.05

    def test_melbourne_padding_costs_more_than_cache(self):
        n = 1000
        melbourne = MelbourneShuffle().shuffle(list(range(n)), DeterministicRandom(4))
        cache = CacheShuffle().shuffle(list(range(n)), DeterministicRandom(4))
        assert melbourne.moves > cache.moves


class TestMelbourneSpecifics:
    def test_rejects_pad_factor_below_one(self):
        with pytest.raises(ValueError):
            MelbourneShuffle(pad_factor=0.9)

    def test_tight_padding_retries_then_fails(self):
        # pad_factor barely above 1 cannot absorb bucket skew for long
        # inputs; the implementation must fail loudly, not loop forever.
        shuffle = MelbourneShuffle(pad_factor=1.01, max_retries=2)
        with pytest.raises(RuntimeError):
            for seed in range(50):
                shuffle.shuffle(list(range(2000)), DeterministicRandom(seed))

    def test_retries_counted(self):
        result = MelbourneShuffle(pad_factor=4.0).shuffle(
            list(range(100)), DeterministicRandom(1)
        )
        assert result.retries == 0


class TestBitonicObliviousness:
    def test_compare_exchange_count_data_independent(self):
        # The whole point of the network: its cost depends only on n.
        moves = {
            BitonicShuffle().shuffle(items, DeterministicRandom(s)).moves
            for s, items in enumerate([list(range(100)), list(range(100, 200)), [0] * 100])
        }
        assert len(moves) == 1


class TestRegistry:
    def test_names(self):
        assert set(shuffle_names()) == {"cache", "melbourne", "bitonic", "fisher-yates"}

    def test_get_by_name(self):
        for name in shuffle_names():
            assert get_shuffle(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_shuffle("riffle")

    def test_obliviousness_flags(self):
        assert get_shuffle("cache").oblivious
        assert get_shuffle("melbourne").oblivious
        assert get_shuffle("bitonic").oblivious
        assert not get_shuffle("fisher-yates").oblivious
