"""Square-root ORAM tests."""

import pytest

from repro.crypto.random import DeterministicRandom
from repro.oram.base import ORAMError, initial_payload
from repro.oram.factory import build_square_root
from repro.oram.square_root import SquareRootORAM


class TestCorrectness:
    def test_read_initial(self, small_square_root):
        assert small_square_root.read(9) == small_square_root.codec.pad(
            initial_payload(9)
        )

    def test_write_then_read(self, small_square_root):
        small_square_root.write(3, b"sqrt-data")
        assert small_square_root.read(3).rstrip(b"\x00") == b"sqrt-data"

    def test_survives_rebuilds(self, small_square_root):
        # Write, then access enough other blocks to force >1 rebuild.
        small_square_root.write(5, b"persist")
        period = small_square_root.period_length
        for i in range(2 * period + 3):
            small_square_root.read(10 + (i % 100))
        assert small_square_root.metrics.shuffle_count >= 2
        assert small_square_root.read(5).rstrip(b"\x00") == b"persist"

    def test_random_ops_match_dict(self, small_square_root):
        rng = DeterministicRandom(8)
        reference = {}
        for _ in range(200):
            addr = rng.randrange(small_square_root.n_blocks)
            if rng.random() < 0.4:
                data = b"s%07d" % rng.randrange(10**6)
                small_square_root.write(addr, data)
                reference[addr] = small_square_root.codec.pad(data)
            else:
                want = reference.get(
                    addr, small_square_root.codec.pad(initial_payload(addr))
                )
                assert small_square_root.read(addr) == want

    def test_bounds(self, small_square_root):
        with pytest.raises(ORAMError):
            small_square_root.read(10_000)


class TestPeriodMechanics:
    def test_rebuild_after_shelter_fills(self, small_square_root):
        period = small_square_root.period_length
        for addr in range(period):
            small_square_root.read(addr)
        assert small_square_root.metrics.shuffle_count == 1
        assert len(small_square_root._shelter) == 0

    def test_shelter_hit_consumes_dummy(self, small_square_root):
        small_square_root.read(1)
        cursor_before = small_square_root._dummy_cursor
        small_square_root.read(1)  # now sheltered -> dummy fetch
        assert small_square_root._dummy_cursor == cursor_before + 1

    def test_exactly_one_storage_fetch_per_access(self, small_square_root):
        io_before = small_square_root.hierarchy.storage.snapshot()
        small_square_root.read(2)
        small_square_root.read(2)  # hit path
        delta = small_square_root.hierarchy.storage.snapshot().delta(io_before)
        assert delta.reads == 2  # one single-slot fetch per access

    def test_shuffle_time_accounted(self, small_square_root):
        for addr in range(small_square_root.period_length):
            small_square_root.read(addr)
        assert small_square_root.metrics.shuffle_time_us > 0


class TestConstruction:
    def test_requires_enough_dummies(self):
        from repro.crypto.ctr import NullCipher
        from repro.oram.base import BlockCodec
        from repro.storage.hierarchy import StorageHierarchy

        codec = BlockCodec(16, NullCipher())
        h = StorageHierarchy(memory_slots=20, storage_slots=300, slot_bytes=codec.slot_bytes)
        with pytest.raises(ValueError):
            SquareRootORAM(
                n_blocks=256,
                codec=codec,
                memory_store=h.memory,
                storage_store=h.storage,
                clock=h.clock,
                dummies=2,  # fewer than the shelter size
            )

    def test_required_slots_helper(self):
        mem, storage = SquareRootORAM.required_slots(256)
        assert mem == 17  # isqrt(256)+1
        assert storage == 256 + 17

    def test_factory_builds_working_instance(self):
        oram = build_square_root(n_blocks=64, seed=9)
        oram.write(1, b"ok")
        assert oram.read(1).rstrip(b"\x00") == b"ok"
