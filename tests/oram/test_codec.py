"""Block codec tests: sealing, dummies, padding."""

import pytest

from repro.crypto.ctr import NullCipher, StreamCipher
from repro.oram.base import DUMMY_ADDR, RECORD_OVERHEAD, BlockCodec, initial_payload


@pytest.fixture
def codec():
    return BlockCodec(16, StreamCipher(b"codec-key"))


class TestSealOpen:
    def test_roundtrip(self, codec):
        record = codec.seal(42, codec.pad(b"hello"))
        addr, payload = codec.open(record)
        assert addr == 42
        assert payload.rstrip(b"\x00") == b"hello"

    def test_record_size(self, codec):
        assert codec.slot_bytes == RECORD_OVERHEAD + 16
        assert len(codec.seal(0, b"\x00" * 16)) == codec.slot_bytes

    def test_auto_pads_short_payloads(self, codec):
        record = codec.seal(1, b"x")
        _, payload = codec.open(record)
        assert payload == b"x" + b"\x00" * 15

    def test_fresh_nonce_every_seal(self, codec):
        a = codec.seal(7, b"\x00" * 16)
        b = codec.seal(7, b"\x00" * 16)
        assert a != b  # re-encryption property

    def test_open_validates_size(self, codec):
        with pytest.raises(ValueError):
            codec.open(b"short")

    def test_ciphertext_hides_addr(self):
        # With a real cipher the address is not visible in the record body.
        codec = BlockCodec(16, StreamCipher(b"k"))
        record = codec.seal(0x11223344, b"\x00" * 16)
        assert (0x11223344).to_bytes(4, "little") not in record[8:12]

    def test_null_cipher_exposes_plaintext(self):
        codec = BlockCodec(16, NullCipher())
        record = codec.seal(5, b"visible-payload!")
        assert b"visible-payload!" in record


class TestBatchCodec:
    """seal_many / open_run / open_many must equal the single-record loop."""

    ENTRIES = [(3, b"alpha"), (9, b"bravo"), (27, b"charlie")]

    @staticmethod
    def pair(mac_key=None):
        """Two codecs with identical key material (independent nonce streams)."""
        make = lambda: BlockCodec(16, StreamCipher(b"codec-key"), mac_key=mac_key)
        return make(), make()

    def test_seal_many_bytes_match_seal_loop(self):
        batched, sequential = self.pair()
        entries = [(addr, sequential.pad(data)) for addr, data in self.ENTRIES]
        buffer = batched.seal_many(entries, dummy_tail=2)
        expected = bytearray()
        for addr, payload in entries:
            expected += sequential.seal(addr, payload)
        expected += sequential.seal_dummy()
        expected += sequential.seal_dummy()
        assert bytes(buffer) == bytes(expected)

    def test_seal_many_bytes_match_with_mac(self):
        batched, sequential = self.pair(mac_key=b"mac-key")
        buffer = batched.seal_many([(5, sequential.pad(b"x"))], dummy_tail=3)
        expected = sequential.seal(5, sequential.pad(b"x"))
        expected += b"".join(sequential.seal_dummy() for _ in range(3))
        assert bytes(buffer) == expected

    def test_open_run_roundtrip(self, codec):
        entries = [(addr, codec.pad(data)) for addr, data in self.ENTRIES]
        buffer = codec.seal_many(entries, dummy_tail=1)
        opened = codec.open_run(buffer)
        assert opened[:3] == entries
        assert opened[3][0] == DUMMY_ADDR

    def test_open_run_accepts_memoryview(self, codec):
        buffer = codec.seal_many([(1, codec.pad(b"mv"))])
        (result,) = codec.open_run(memoryview(bytes(buffer)))
        assert result == (1, codec.pad(b"mv"))

    def test_open_run_rejects_partial_records(self, codec):
        with pytest.raises(ValueError):
            codec.open_run(b"\x00" * (codec.slot_bytes + 1))

    def test_open_many_matches_open(self, codec):
        records = [codec.seal(addr, codec.pad(data)) for addr, data in self.ENTRIES]
        assert codec.open_many(records) == [codec.open(r) for r in records]

    def test_open_accepts_memoryview(self, codec):
        record = codec.seal(7, codec.pad(b"view"))
        addr, payload = codec.open(memoryview(record))
        assert addr == 7
        assert isinstance(payload, bytes)
        assert payload == codec.pad(b"view")

    def test_batch_apis_with_null_cipher(self):
        # NullCipher has no keystream: exercises the generic fallbacks.
        codec = BlockCodec(16, NullCipher())
        entries = [(4, codec.pad(b"plain"))]
        buffer = codec.seal_many(entries, dummy_tail=1)
        opened = codec.open_run(buffer)
        assert opened[0] == entries[0]
        assert opened[1][0] == DUMMY_ADDR

    def test_ctr_cipher_fused_roundtrip(self):
        from repro.crypto.cipher import Speck64
        from repro.crypto.ctr import CtrCipher

        codec = BlockCodec(16, CtrCipher(Speck64(bytes(range(16)))))
        record = codec.seal(11, codec.pad(b"speck"))
        assert codec.open(record) == (11, codec.pad(b"speck"))


class TestDummies:
    def test_dummy_roundtrip(self, codec):
        record = codec.seal_dummy()
        assert codec.is_dummy(record)
        addr, _ = codec.open(record)
        assert addr == DUMMY_ADDR

    def test_real_record_not_dummy(self, codec):
        assert not codec.is_dummy(codec.seal(3, b"\x00" * 16))

    def test_dummies_outwardly_distinct(self, codec):
        # Fresh nonces: two dummies never share ciphertext.
        assert codec.seal_dummy() != codec.seal_dummy()


class TestPadding:
    def test_pad_exact(self, codec):
        assert codec.pad(b"x" * 16) == b"x" * 16

    def test_pad_too_long(self, codec):
        with pytest.raises(ValueError):
            codec.pad(b"x" * 17)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockCodec(0, NullCipher())


class TestInitialPayload:
    def test_fits_minimum_payload(self):
        assert len(initial_payload(0)) == 8
        assert len(initial_payload(2**63)) == 8

    def test_distinct_per_addr(self):
        assert initial_payload(1) != initial_payload(2)


class TestIntegrity:
    def make(self):
        from repro.oram.base import MAC_BYTES, RECORD_OVERHEAD

        codec = BlockCodec(16, StreamCipher(b"codec-key"), mac_key=b"mac-key")
        assert codec.slot_bytes == RECORD_OVERHEAD + 16 + MAC_BYTES
        return codec

    def test_roundtrip_with_mac(self):
        codec = self.make()
        record = codec.seal(5, codec.pad(b"guarded"))
        addr, payload = codec.open(record)
        assert addr == 5 and payload.rstrip(b"\x00") == b"guarded"

    def test_tampered_body_detected(self):
        from repro.oram.base import IntegrityError

        codec = self.make()
        record = bytearray(codec.seal(5, codec.pad(b"guarded")))
        record[12] ^= 0x01  # flip one ciphertext bit
        with pytest.raises(IntegrityError):
            codec.open(bytes(record))

    def test_tampered_tag_detected(self):
        from repro.oram.base import IntegrityError

        codec = self.make()
        record = bytearray(codec.seal(5, codec.pad(b"guarded")))
        record[-1] ^= 0x01
        with pytest.raises(IntegrityError):
            codec.open(bytes(record))

    def test_wrong_mac_key_detected(self):
        from repro.oram.base import IntegrityError

        sealer = BlockCodec(16, StreamCipher(b"codec-key"), mac_key=b"key-a")
        opener = BlockCodec(16, StreamCipher(b"codec-key"), mac_key=b"key-b")
        record = sealer.seal(1, sealer.pad(b"x"))
        with pytest.raises(IntegrityError):
            opener.open(record)

    def test_empty_mac_key_rejected(self):
        with pytest.raises(ValueError):
            BlockCodec(16, StreamCipher(b"k"), mac_key=b"")

    def test_horam_runs_with_integrity(self):
        from repro.core.horam import build_horam

        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=1, integrity=True)
        oram.write(7, b"tamper-proof")
        assert oram.read(7).rstrip(b"\x00") == b"tamper-proof"

    def test_horam_detects_storage_tampering(self):
        from repro.core.horam import build_horam
        from repro.oram.base import IntegrityError

        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=1, integrity=True)
        # Corrupt a storage slot behind the protocol's back.
        victim = oram.storage.location[0]
        record = bytearray(oram.hierarchy.storage.peek_slot(victim))
        record[10] ^= 0xFF
        oram.hierarchy.storage.poke_slot(victim, bytes(record))
        with pytest.raises(IntegrityError):
            oram.read(0)

    def test_horam_detects_dummy_slot_tampering(self):
        # The real-slot fast path must not skip MAC checks: corrupting a
        # DUMMY record in the cache tree is tampering too.  Slot 0 is the
        # root bucket's first slot, so every path access reads it.
        from repro.core.horam import build_horam
        from repro.oram.base import IntegrityError

        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=1, integrity=True)
        record = bytearray(oram.hierarchy.memory.peek_slot(0))
        record[10] ^= 0xFF
        oram.hierarchy.memory.poke_slot(0, bytes(record))
        with pytest.raises(IntegrityError):
            oram.read(5)
