"""Stash tests including greedy write-back selection."""

import pytest

from repro.oram.base import StashOverflowError
from repro.oram.stash import Stash
from repro.oram.tree import TreeGeometry


class TestBasics:
    def test_put_get_remove(self):
        stash = Stash()
        stash.put(5, leaf=2, payload=b"five")
        assert 5 in stash
        assert stash.get(5).payload == b"five"
        entry = stash.remove(5)
        assert entry.addr == 5
        assert 5 not in stash

    def test_overwrite_same_addr(self):
        stash = Stash()
        stash.put(5, leaf=2, payload=b"old")
        stash.put(5, leaf=3, payload=b"new")
        assert len(stash) == 1
        assert stash.get(5).payload == b"new"

    def test_peak_tracking(self):
        stash = Stash()
        for addr in range(4):
            stash.put(addr, leaf=0, payload=b"")
        stash.remove(0)
        assert stash.peak == 4

    def test_limit_enforced(self):
        stash = Stash(limit=2)
        stash.put(0, 0, b"")
        stash.put(1, 0, b"")
        with pytest.raises(StashOverflowError):
            stash.put(2, 0, b"")

    def test_pop_all(self):
        stash = Stash()
        stash.put(1, 0, b"a")
        stash.put(2, 0, b"b")
        entries = stash.pop_all()
        assert {e.addr for e in entries} == {1, 2}
        assert len(stash) == 0


class TestGreedySelection:
    def test_only_matching_paths_selected(self):
        g = TreeGeometry(levels=3, bucket_size=4)
        stash = Stash()
        stash.put(1, leaf=0, payload=b"")
        stash.put(2, leaf=3, payload=b"")  # opposite half
        # Bucket at level 2 on path to leaf 0 can only take leaf-0 blocks.
        selected = stash.select_for_bucket(g, path_leaf=0, level=2, space=4)
        assert [e.addr for e in selected] == [1]
        # Root (level 0) accepts anything still in the stash.
        selected = stash.select_for_bucket(g, path_leaf=0, level=0, space=4)
        assert [e.addr for e in selected] == [2]

    def test_space_respected(self):
        g = TreeGeometry(levels=2, bucket_size=4)
        stash = Stash()
        for addr in range(6):
            stash.put(addr, leaf=0, payload=b"")
        selected = stash.select_for_bucket(g, path_leaf=0, level=0, space=4)
        assert len(selected) == 4
        assert len(stash) == 2

    def test_selected_entries_removed(self):
        g = TreeGeometry(levels=2, bucket_size=4)
        stash = Stash()
        stash.put(9, leaf=1, payload=b"")
        stash.select_for_bucket(g, path_leaf=1, level=1, space=4)
        assert 9 not in stash

    def test_zero_space(self):
        g = TreeGeometry(levels=2, bucket_size=4)
        stash = Stash()
        stash.put(9, leaf=1, payload=b"")
        assert stash.select_for_bucket(g, path_leaf=1, level=1, space=0) == []
        assert 9 in stash
