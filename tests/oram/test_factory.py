"""Factory builder tests: geometry, devices, integrity plumbing."""

import pytest

from repro.core.horam import build_horam
from repro.oram.factory import (
    BASELINES,
    baseline_names,
    build_baseline,
    build_bios,
    build_partition,
    build_path_oram,
    build_plain,
    build_square_root,
    build_succinct_hier,
    shard_builder,
    shard_protocol_names,
)
from repro.storage.device import hdd_realistic, ssd_sata


class TestGeometry:
    def test_path_oram_stores_sized_exactly(self):
        oram = build_path_oram(n_blocks=256, memory_blocks=64)
        assert oram.hierarchy.memory.slots == oram.tree.memory_slots_needed
        assert oram.hierarchy.storage.slots == oram.tree.storage_slots_needed

    def test_square_root_stores_sized_exactly(self):
        oram = build_square_root(n_blocks=256)
        assert oram.hierarchy.memory.slots == oram.shelter_size
        assert oram.hierarchy.storage.slots == 256 + oram.dummies

    def test_partition_store_sized_exactly(self):
        oram = build_partition(n_blocks=256)
        assert (
            oram.hierarchy.storage.slots
            == oram.partition_count * oram.partition_capacity
        )

    def test_horam_store_covers_layout(self):
        oram = build_horam(n_blocks=300, mem_tree_blocks=64)  # non-square N
        assert oram.hierarchy.storage.slots >= oram.storage.total_slots


class TestDevices:
    def test_custom_devices_propagate(self):
        oram = build_path_oram(
            n_blocks=128,
            memory_blocks=32,
            storage_device=ssd_sata(),
        )
        assert oram.hierarchy.storage.device.name == "ssd-sata"

    def test_device_changes_timing(self):
        fast = build_plain(n_blocks=64, storage_device=ssd_sata())
        slow = build_plain(n_blocks=64, storage_device=hdd_realistic())
        fast.read(0)
        slow.read(0)
        assert slow.clock.now_us > fast.clock.now_us


class TestSeeds:
    def test_same_seed_reproduces(self):
        a = build_square_root(n_blocks=64, seed=5)
        b = build_square_root(n_blocks=64, seed=5)
        assert a.permutation.as_sequence() == b.permutation.as_sequence()

    def test_different_seed_differs(self):
        a = build_square_root(n_blocks=64, seed=5)
        b = build_square_root(n_blocks=64, seed=6)
        assert a.permutation.as_sequence() != b.permutation.as_sequence()


class TestTraceFlag:
    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (build_path_oram, {"n_blocks": 128, "memory_blocks": 32}),
            (build_square_root, {"n_blocks": 128}),
            (build_partition, {"n_blocks": 128}),
            (build_plain, {"n_blocks": 128}),
        ],
    )
    def test_trace_off_by_default(self, builder, kwargs):
        oram = builder(**kwargs)
        oram.read(1)
        assert len(oram.hierarchy.trace) == 0  # capacity-0 recorder

    def test_trace_on(self):
        oram = build_plain(n_blocks=64, trace=True)
        oram.read(1)
        assert len(oram.hierarchy.trace) == 1


class TestRegistry:
    def test_baseline_names_sorted_and_complete(self):
        assert baseline_names() == sorted(BASELINES)
        for name in ("path", "sqrt", "partition", "plain", "succinct", "bios"):
            assert name in baseline_names()

    def test_unknown_baseline_enumerates_valid_names(self):
        with pytest.raises(ValueError) as excinfo:
            build_baseline("nope", 64)
        message = str(excinfo.value)
        assert "unknown baseline 'nope'" in message
        for name in baseline_names():
            assert name in message

    def test_memory_baselines_demand_a_budget(self):
        for name in ("path", "succinct", "bios"):
            with pytest.raises(ValueError, match="needs memory_blocks"):
                build_baseline(name, 64)

    def test_shard_protocol_names(self):
        assert shard_protocol_names() == sorted(["horam", "succinct", "bios"])

    def test_unknown_shard_protocol_enumerates_valid_names(self):
        with pytest.raises(ValueError, match="unknown shard protocol"):
            shard_builder("nope")

    def test_kernel_geometry_sized_exactly(self):
        succinct = build_succinct_hier(n_blocks=256, memory_blocks=64)
        assert (
            succinct.hierarchy.storage.slots
            >= type(succinct).required_storage_slots(succinct.config)
        )
        bios = build_bios(n_blocks=256, memory_blocks=64)
        assert (
            bios.hierarchy.storage.slots
            >= type(bios).required_storage_slots(bios.config)
        )

    def test_shard_builder_matches_direct_build(self):
        via_factory = shard_builder("succinct")(
            n_blocks=128, mem_tree_blocks=32, seed=3
        )
        direct = build_succinct_hier(n_blocks=128, memory_blocks=32, seed=3)
        assert via_factory.read(5) == direct.read(5)
