"""Position map tests."""

import pytest

from repro.crypto.random import DeterministicRandom
from repro.oram.position_map import ArrayPositionMap, DictPositionMap


class TestArrayPositionMap:
    def test_all_addresses_mapped(self):
        pm = ArrayPositionMap(100, leaves=16, rng=DeterministicRandom(1))
        for addr in range(100):
            assert 0 <= pm.get(addr) < 16

    def test_remap_changes_and_is_uniformish(self):
        pm = ArrayPositionMap(1, leaves=64, rng=DeterministicRandom(1))
        rng = DeterministicRandom(2)
        leaves = {pm.remap(0, rng) for _ in range(200)}
        assert len(leaves) > 40  # covers most of the 64 leaves

    def test_set_validates(self):
        pm = ArrayPositionMap(4, leaves=8, rng=DeterministicRandom(1))
        pm.set(0, 7)
        assert pm.get(0) == 7
        with pytest.raises(ValueError):
            pm.set(0, 8)

    def test_secure_bytes(self):
        pm = ArrayPositionMap(1000, leaves=8, rng=DeterministicRandom(1))
        assert pm.secure_bytes() == 4000

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayPositionMap(0, leaves=4, rng=DeterministicRandom(1))
        with pytest.raises(ValueError):
            ArrayPositionMap(4, leaves=0, rng=DeterministicRandom(1))


class TestDictPositionMap:
    def test_absence_means_not_cached(self):
        pm = DictPositionMap(leaves=8)
        assert 3 not in pm
        assert pm.get(3) is None

    def test_set_and_remove(self):
        pm = DictPositionMap(leaves=8)
        pm.set(3, 5)
        assert 3 in pm and pm.get(3) == 5
        assert pm.remove(3) == 5
        assert 3 not in pm

    def test_remap_inserts(self):
        pm = DictPositionMap(leaves=8)
        leaf = pm.remap(9, DeterministicRandom(1))
        assert pm.get(9) == leaf

    def test_clear_and_addresses(self):
        pm = DictPositionMap(leaves=8)
        pm.set(1, 0)
        pm.set(2, 1)
        assert sorted(pm.addresses()) == [1, 2]
        pm.clear()
        assert len(pm) == 0

    def test_leaf_validation(self):
        pm = DictPositionMap(leaves=8)
        with pytest.raises(ValueError):
            pm.set(0, 9)

    def test_secure_bytes_tracks_occupancy(self):
        pm = DictPositionMap(leaves=8)
        assert pm.secure_bytes() == 0
        pm.set(1, 1)
        assert pm.secure_bytes() == 12
