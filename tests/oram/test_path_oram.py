"""Path ORAM baseline tests: correctness, sizing, stash health, timing."""

import pytest

from repro.crypto.random import DeterministicRandom
from repro.oram.base import ORAMError, initial_payload
from repro.oram.factory import build_path_oram
from repro.security.statistics import binned_histogram, chi_square_uniform_test
from repro.workload.generators import hotspot


class TestCorrectness:
    def test_read_initial_content(self, small_path_oram):
        for addr in (0, 100, 255):
            payload = small_path_oram.read(addr)
            assert payload == small_path_oram.codec.pad(initial_payload(addr))

    def test_write_then_read(self, small_path_oram):
        small_path_oram.write(7, b"updated!")
        assert small_path_oram.read(7).rstrip(b"\x00") == b"updated!"

    def test_interleaved_ops_match_dict(self, small_path_oram):
        reference = {}
        rng = DeterministicRandom(10)
        for _ in range(300):
            addr = rng.randrange(small_path_oram.n_blocks)
            if rng.random() < 0.5:
                data = b"v%010d" % rng.randrange(10**9)
                small_path_oram.write(addr, data)
                reference[addr] = small_path_oram.codec.pad(data)
            else:
                want = reference.get(
                    addr, small_path_oram.codec.pad(initial_payload(addr))
                )
                assert small_path_oram.read(addr) == want

    def test_address_bounds(self, small_path_oram):
        with pytest.raises(ORAMError):
            small_path_oram.read(small_path_oram.n_blocks)


class TestSizing:
    def test_paper_level_split(self):
        # 64 MB set with 8 MB memory: 4 storage levels (Table 5-1 / eq 5-2).
        oram = build_path_oram(n_blocks=1 << 16, memory_blocks=1 << 13, seed=1)
        assert oram.storage_levels == 4

    def test_quick_scale_level_split(self, small_path_oram):
        # N=256, memory=64: tree has 7 levels, memory holds top 4
        # ((2^4-1)*4 = 60 <= 64), so 3 levels spill to storage.
        assert small_path_oram.geometry.levels == 7
        assert small_path_oram.tree.mem_levels == 4
        assert small_path_oram.storage_levels == 3

    def test_memory_budget_too_small(self):
        from repro.oram.base import CapacityError

        with pytest.raises(CapacityError):
            build_path_oram(n_blocks=256, memory_blocks=2, seed=1)


class TestStashHealth:
    def test_stash_stays_bounded(self, small_path_oram):
        rng = DeterministicRandom(5)
        for request in hotspot(small_path_oram.n_blocks, 400, rng):
            small_path_oram.read(request.addr)
        # At ~50% utilization the stash should stay tiny.
        assert small_path_oram.stash.peak < 40


class TestTiming:
    def test_clock_advances_per_access(self, small_path_oram):
        before = small_path_oram.clock.now_us
        small_path_oram.read(0)
        after = small_path_oram.clock.now_us
        assert after > before

    def test_access_cost_matches_level_arithmetic(self, small_path_oram):
        # Per access: storage_levels bucket reads + writes on the slow
        # device, each one positioning + 4 KB transfer.
        device = small_path_oram.hierarchy.storage.device
        bucket_bytes = 4 * small_path_oram.hierarchy.modeled_slot_bytes
        expected_io = small_path_oram.storage_levels * (
            device.access_us(bucket_bytes, write=False)
            + device.access_us(bucket_bytes, write=True)
        )
        io_before = small_path_oram.hierarchy.storage.snapshot()
        small_path_oram.read(0)
        delta = small_path_oram.hierarchy.storage.snapshot().delta(io_before)
        assert delta.busy_us == pytest.approx(expected_io, rel=0.01)

    def test_io_slots_per_access(self, small_path_oram):
        io_before = small_path_oram.hierarchy.storage.snapshot()
        small_path_oram.read(1)
        delta = small_path_oram.hierarchy.storage.snapshot().delta(io_before)
        z, levels = 4, small_path_oram.storage_levels
        assert delta.reads == z * levels
        assert delta.writes == z * levels


class TestObliviousness:
    def test_leaf_choices_spread_uniformly(self):
        oram = build_path_oram(n_blocks=512, memory_blocks=128, seed=3)
        # Hammer one single address; the observed leaves must still look
        # uniform thanks to remapping.
        for _ in range(400):
            oram.read(42)
        leaves = oram.tree.leaf_log
        counts = binned_histogram(leaves, oram.geometry.leaves, 8)
        result = chi_square_uniform_test(counts)
        assert result.p_value > 0.001

    def test_same_addr_different_paths(self):
        oram = build_path_oram(n_blocks=512, memory_blocks=128, seed=3)
        oram.read(42)
        oram.read(42)
        first, second = oram.tree.leaf_log[-2:]
        # Not a hard guarantee for a single pair, but with 64+ leaves a
        # collision here is <2%; the seed is fixed so this is stable.
        assert first != second
