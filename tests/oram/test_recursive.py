"""Recursive position map tests."""

import pytest

from repro.crypto.random import DeterministicRandom
from repro.oram.recursive import RecursivePositionMap
from repro.sim.metrics import TierTimes


def make_map(n=1024, leaves=128, entries_per_block=16, threshold=8, seed=1):
    return RecursivePositionMap(
        n_entries=n,
        leaves=leaves,
        rng=DeterministicRandom(seed),
        entries_per_block=entries_per_block,
        threshold=threshold,
    )


class TestConstruction:
    def test_recursion_depth(self):
        # 1024 entries / 16 per block = 64 blocks -> 4 blocks -> top.
        pm = make_map()
        assert pm.levels == 2

    def test_small_map_stays_flat(self):
        pm = make_map(n=100, threshold=256)
        assert pm.levels == 0
        assert pm.secure_bytes() == 400

    def test_controller_state_shrinks(self):
        flat_bytes = 4 * 4096
        pm = make_map(n=4096, threshold=16)
        assert pm.secure_bytes() < flat_bytes / 50
        assert pm.memory_bytes() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_map(n=0)
        with pytest.raises(ValueError):
            RecursivePositionMap(8, 0, DeterministicRandom(1))
        with pytest.raises(ValueError):
            RecursivePositionMap(8, 4, DeterministicRandom(1), entries_per_block=1)


class TestLookups:
    def test_initial_values_preserved(self):
        pm = make_map(n=256, entries_per_block=8, threshold=4)
        initial = pm.initial_leaves()
        for addr in range(0, 256, 13):
            assert pm.get(addr) == initial[addr]

    def test_set_then_get(self):
        pm = make_map(n=256, entries_per_block=8, threshold=4)
        old = pm.set(10, 77)
        assert pm.get(10) == 77
        assert old == pm.initial_leaves()[10]

    def test_neighbors_unaffected_by_set(self):
        pm = make_map(n=256, entries_per_block=8, threshold=4)
        initial = pm.initial_leaves()
        pm.set(10, 77)  # same level-0 block as 8..15
        for addr in (8, 9, 11, 15):
            assert pm.get(addr) == initial[addr]

    def test_many_updates_consistent(self):
        pm = make_map(n=512, entries_per_block=16, threshold=8, seed=3)
        reference = pm.initial_leaves()
        rng = DeterministicRandom(9)
        for _ in range(300):
            addr = rng.randrange(512)
            if rng.random() < 0.5:
                leaf = rng.randrange(128)
                pm.set(addr, leaf)
                reference[addr] = leaf
            else:
                assert pm.get(addr) == reference[addr]

    def test_remap_returns_new_leaf(self):
        pm = make_map(n=256, entries_per_block=8, threshold=4)
        rng = DeterministicRandom(4)
        leaf = pm.remap(5, rng)
        assert pm.get(5) == leaf

    def test_leaf_bounds_checked(self):
        pm = make_map(n=256)
        with pytest.raises(ValueError):
            pm.set(0, 128)
        with pytest.raises(ValueError):
            pm.get(256)


class TestCostAccounting:
    def test_lookup_charges_memory_time(self):
        pm = make_map(n=1024, entries_per_block=16, threshold=8)
        times = TierTimes()
        pm.get(3, times)
        assert times.mem_us > 0
        assert times.io_us == 0

    def test_deeper_recursion_costs_more(self):
        shallow = make_map(n=1024, entries_per_block=64, threshold=64)
        deep = make_map(n=1024, entries_per_block=4, threshold=4)
        assert deep.levels > shallow.levels
        t_shallow, t_deep = TierTimes(), TierTimes()
        shallow.get(0, t_shallow)
        deep.get(0, t_deep)
        assert t_deep.mem_us > t_shallow.mem_us

    def test_flat_map_lookup_free(self):
        pm = make_map(n=64, threshold=256)
        times = TierTimes()
        pm.get(0, times)
        assert times.mem_us == 0
