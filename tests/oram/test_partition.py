"""Partition ORAM tests."""

import pytest

from repro.crypto.random import DeterministicRandom
from repro.oram.base import initial_payload
from repro.oram.factory import build_partition
from repro.oram.partition import PartitionORAM


class TestCorrectness:
    def test_read_initial(self, small_partition):
        assert small_partition.read(11) == small_partition.codec.pad(
            initial_payload(11)
        )

    def test_write_then_read(self, small_partition):
        small_partition.write(4, b"part-data")
        assert small_partition.read(4).rstrip(b"\x00") == b"part-data"

    def test_random_ops_match_dict(self, small_partition):
        rng = DeterministicRandom(12)
        reference = {}
        for _ in range(400):
            addr = rng.randrange(small_partition.n_blocks)
            if rng.random() < 0.4:
                data = b"p%07d" % rng.randrange(10**6)
                small_partition.write(addr, data)
                reference[addr] = small_partition.codec.pad(data)
            else:
                want = reference.get(
                    addr, small_partition.codec.pad(initial_payload(addr))
                )
                assert small_partition.read(addr) == want

    def test_survives_many_evictions(self, small_partition):
        small_partition.write(0, b"keep-me")
        for i in range(300):
            small_partition.read(1 + (i % 200))
        assert small_partition.metrics.shuffle_count > 5
        assert small_partition.read(0).rstrip(b"\x00") == b"keep-me"


class TestMechanics:
    def test_one_storage_read_per_access(self, small_partition):
        io_before = small_partition.hierarchy.storage.snapshot()
        small_partition.read(1)
        delta = small_partition.hierarchy.storage.snapshot().delta(io_before)
        # Exactly one single-slot read before any eviction runs (the
        # eviction adds partition streams, so measure a single access).
        assert delta.reads >= 1

    def test_stash_bounded_by_evict_rate(self, small_partition):
        rng = DeterministicRandom(3)
        for _ in range(200):
            small_partition.read(rng.randrange(small_partition.n_blocks))
        # Between evictions the stash grows by at most evict_rate entries;
        # blocks spilled by a full partition may ride along on top.
        spills = small_partition.metrics.extra["evict_spills"]
        assert (
            small_partition.metrics.stash_peak
            <= small_partition.evict_rate + spills + 1
        )

    def test_eviction_happens_at_rate(self, small_partition):
        for addr in range(small_partition.evict_rate):
            small_partition.read(addr)
        assert small_partition.metrics.shuffle_count == 1

    def test_stash_hit_reads_claimed_partition(self, small_partition):
        small_partition.read(2)  # now in stash with a target partition
        target = small_partition._stash[2].target_partition
        io_before = small_partition.hierarchy.storage.snapshot()
        small_partition.read(2)  # dummy fetch
        # The dummy fetch must touch a slot inside the claimed partition.
        events = small_partition.hierarchy.trace.storage_reads()
        slot = events[-1].slot
        assert slot // small_partition.partition_capacity == target

    def test_no_dummy_exhaustion_in_normal_run(self, small_partition):
        rng = DeterministicRandom(4)
        for _ in range(300):
            small_partition.read(rng.randrange(small_partition.n_blocks))
        assert small_partition.metrics.extra["dummy_exhaustion"] == 0


class TestConstruction:
    def test_required_slots_matches_layout(self):
        slots = PartitionORAM.required_slots(256)
        oram = build_partition(n_blocks=256, seed=1)
        assert oram.partition_count * oram.partition_capacity == slots

    def test_custom_evict_rate(self):
        oram = build_partition(n_blocks=256, seed=1, evict_rate=4)
        assert oram.evict_rate == 4
        for addr in range(4):
            oram.read(addr)
        assert oram.metrics.shuffle_count == 1
