"""Tree geometry tests: addressing math and the paper's level arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.oram.tree import TreeGeometry


class TestCapacity:
    def test_counts(self):
        g = TreeGeometry(levels=4, bucket_size=4)
        assert g.buckets == 15
        assert g.leaves == 8
        assert g.slots == 60
        assert g.real_capacity == 30

    def test_single_level(self):
        g = TreeGeometry(levels=1, bucket_size=2)
        assert g.buckets == 1 and g.leaves == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TreeGeometry(levels=0, bucket_size=4)
        with pytest.raises(ValueError):
            TreeGeometry(levels=3, bucket_size=0)


class TestAddressing:
    def test_path_root_to_leaf(self):
        g = TreeGeometry(levels=3, bucket_size=4)
        # Leaves are buckets 3..6; leaf 2 is bucket 5, parent 2, root 0.
        assert g.path_buckets(2) == [0, 2, 5]

    def test_path_length_equals_levels(self):
        g = TreeGeometry(levels=7, bucket_size=4)
        for leaf in (0, 31, 63):
            assert len(g.path_buckets(leaf)) == 7

    def test_leaf_bucket(self):
        g = TreeGeometry(levels=3, bucket_size=4)
        assert [g.leaf_bucket(x) for x in range(4)] == [3, 4, 5, 6]

    def test_level_of(self):
        g = TreeGeometry(levels=3, bucket_size=4)
        assert g.level_of(0) == 0
        assert g.level_of(1) == 1
        assert g.level_of(2) == 1
        assert g.level_of(6) == 2

    def test_bucket_on_path(self):
        g = TreeGeometry(levels=4, bucket_size=4)
        for leaf in range(g.leaves):
            path = g.path_buckets(leaf)
            for level, bucket in enumerate(path):
                assert g.bucket_on_path(leaf, level) == bucket

    def test_buckets_at_level(self):
        g = TreeGeometry(levels=3, bucket_size=4)
        assert list(g.buckets_at_level(0)) == [0]
        assert list(g.buckets_at_level(1)) == [1, 2]
        assert list(g.buckets_at_level(2)) == [3, 4, 5, 6]

    def test_bounds(self):
        g = TreeGeometry(levels=3, bucket_size=4)
        with pytest.raises(ValueError):
            g.path_buckets(4)
        with pytest.raises(ValueError):
            g.bucket_on_path(0, 3)
        with pytest.raises(ValueError):
            g.level_of(7)


class TestCommonDepth:
    def test_same_leaf_shares_whole_path(self):
        g = TreeGeometry(levels=5, bucket_size=4)
        assert g.common_path_depth(9, 9) == 4

    def test_opposite_halves_share_only_root(self):
        g = TreeGeometry(levels=4, bucket_size=4)
        assert g.common_path_depth(0, 7) == 0

    def test_adjacent_leaves(self):
        g = TreeGeometry(levels=4, bucket_size=4)
        # Leaves 0 and 1 share buckets at levels 0..2; depth = 2.
        assert g.common_path_depth(0, 1) == 2

    @given(st.integers(2, 7), st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_path_intersection(self, levels, data):
        g = TreeGeometry(levels=levels, bucket_size=4)
        a = data.draw(st.integers(0, g.leaves - 1))
        b = data.draw(st.integers(0, g.leaves - 1))
        path_a = g.path_buckets(a)
        path_b = g.path_buckets(b)
        shared = sum(1 for x, y in zip(path_a, path_b) if x == y)
        assert g.common_path_depth(a, b) == shared - 1
        assert g.common_path_depth(a, b) == g.common_path_depth(b, a)


class TestFactories:
    def test_for_capacity_never_exceeds(self):
        for budget in (8, 60, 100, 1024, 5000):
            g = TreeGeometry.for_capacity(budget, 4)
            assert g.slots <= budget
            bigger = TreeGeometry(levels=g.levels + 1, bucket_size=4)
            assert bigger.slots > budget

    def test_for_capacity_too_small(self):
        with pytest.raises(ValueError):
            TreeGeometry.for_capacity(3, 4)

    def test_for_real_blocks_paper_sizes(self):
        # The paper's 64 MB set: N = 2^16 blocks -> 15 levels (eq. 5-2's
        # 2N-slot sizing), and the 1 GB set: N = 2^20 -> 19 levels.
        assert TreeGeometry.for_real_blocks(1 << 16, 4).levels == 15
        assert TreeGeometry.for_real_blocks(1 << 20, 4).levels == 19

    def test_for_real_blocks_holds_near_half(self):
        for n in (10, 100, 1000, 1 << 16):
            g = TreeGeometry.for_real_blocks(n, 4)
            assert g.slots >= 2 * n - 4  # one-bucket tolerance
