"""PlainStore baseline tests (and the leakage it exists to demonstrate)."""

import pytest

from repro.crypto.random import DeterministicRandom
from repro.oram.base import ORAMError, initial_payload
from repro.oram.factory import build_plain
from repro.workload.generators import hotspot


class TestCorrectness:
    def test_read_initial(self):
        store = build_plain(n_blocks=64, seed=1)
        assert store.read(9) == store.codec.pad(initial_payload(9))

    def test_write_then_read(self):
        store = build_plain(n_blocks=64, seed=1)
        store.write(3, b"plain")
        assert store.read(3).rstrip(b"\x00") == b"plain"

    def test_bounds(self):
        store = build_plain(n_blocks=64, seed=1)
        with pytest.raises(ORAMError):
            store.read(64)


class TestLeakage:
    def test_identity_layout_leaks_pattern(self):
        # The property the ORAMs remove: physical slot == logical address.
        store = build_plain(n_blocks=256, seed=1, trace=True)
        rng = DeterministicRandom(2)
        requests = list(hotspot(256, 300, rng, hot_blocks=10))
        for request in requests:
            store.read(request.addr)
        slots = [e.slot for e in store.hierarchy.trace.storage_reads()]
        assert slots == [r.addr for r in requests]

    def test_cheapest_possible_access(self):
        # One slot read per request -- the cost-of-security floor.
        store = build_plain(n_blocks=64, seed=1)
        before = store.hierarchy.storage.snapshot()
        store.read(5)
        delta = store.hierarchy.storage.snapshot().delta(before)
        assert delta.reads == 1
        assert delta.writes == 0
