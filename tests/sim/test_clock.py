"""SimClock / Channel tests."""

import pytest

from repro.sim.clock import Channel, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_us == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(100.0)
        clock.advance(50.0)
        assert clock.now_us == 150.0

    def test_unit_views(self):
        clock = SimClock()
        clock.advance(2_500_000.0)
        assert clock.now_ms == pytest.approx(2500.0)
        assert clock.now_s == pytest.approx(2.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_never_goes_back(self):
        clock = SimClock()
        clock.advance(100.0)
        clock.advance_to(50.0)
        assert clock.now_us == 100.0
        clock.advance_to(200.0)
        assert clock.now_us == 200.0

    def test_reset(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.reset()
        assert clock.now_us == 0.0


class TestChannel:
    def test_overlap_semantics(self):
        # Two channels starting together overlap; the caller synchronizes
        # at max completion -- exactly the H-ORAM cycle barrier.
        mem = Channel("mem")
        io = Channel("io")
        mem_done = mem.submit(0.0, 30.0)
        io_done = io.submit(0.0, 100.0)
        assert mem_done == 30.0
        assert io_done == 100.0
        assert max(mem_done, io_done) == 100.0

    def test_serialization_within_channel(self):
        ch = Channel("io")
        first = ch.submit(0.0, 40.0)
        second = ch.submit(0.0, 10.0)  # must queue behind the first
        assert first == 40.0
        assert second == 50.0

    def test_start_after_busy(self):
        ch = Channel("io")
        ch.submit(0.0, 10.0)
        done = ch.submit(100.0, 5.0)  # channel idle at 100
        assert done == 105.0

    def test_busy_time_accumulates(self):
        ch = Channel("io")
        ch.submit(0.0, 10.0)
        ch.submit(0.0, 20.0)
        assert ch.busy_time_us == 30.0
        assert ch.operations == 2

    def test_utilization(self):
        ch = Channel("io")
        ch.submit(0.0, 25.0)
        assert ch.utilization(100.0) == pytest.approx(0.25)
        assert ch.utilization(0.0) == 0.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Channel("x").submit(0.0, -1.0)

    def test_reset(self):
        ch = Channel("io")
        ch.submit(0.0, 10.0)
        ch.reset()
        assert ch.busy_until_us == 0.0
        assert ch.operations == 0
