"""Simulation engine tests."""

import pytest

from repro.core.horam import build_horam
from repro.crypto.random import DeterministicRandom
from repro.oram.base import Request, initial_payload
from repro.oram.factory import build_path_oram
from repro.sim.engine import SimulationEngine, VerificationError, run_workload
from repro.workload.generators import hotspot, read_write_mix


class TestBatchedPath:
    def test_metrics_delta_isolated_between_runs(self):
        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=1)
        engine = SimulationEngine(oram)
        first = engine.run([Request.read(a) for a in range(10)])
        second = engine.run([Request.read(a) for a in range(10, 20)])
        assert first.requests_served == 10
        assert second.requests_served == 10
        assert second.total_time_us > 0

    def test_verify_catches_protocol_lies(self):
        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=1)

        # Sabotage: make every read return zeros by clobbering results.
        class Lying:
            def __init__(self, inner):
                self._inner = inner
                self.hierarchy = inner.hierarchy
                self.metrics = inner.metrics
                self.codec = inner.codec

            def submit(self, request):
                entry = self._inner.submit(request)
                return entry

            def drain(self):
                retired = self._inner.drain()
                for entry in retired:
                    entry.result = b"\x00" * 16
                return retired

        engine = SimulationEngine(Lying(oram), verify=True)
        with pytest.raises(VerificationError):
            engine.run([Request.read(3)])

    def test_write_read_verified(self):
        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=1)
        rng = DeterministicRandom(2)
        requests = list(read_write_mix(256, 200, rng, write_ratio=0.5, hot_blocks=30))
        run_workload(oram, requests, verify=True)  # raises on any mismatch

    def test_second_run_reads_first_runs_writes(self):
        # Regression: the batched replay used to start from an empty
        # shadow state, so a second run(verify=True) reading an address
        # written in an earlier run raised a spurious VerificationError.
        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=1)
        engine = SimulationEngine(oram, verify=True)
        engine.run([Request.write(9, b"from-run-one")])
        metrics = engine.run([Request.read(9)])  # must verify clean
        assert metrics.requests_served == 1

    def test_cross_run_read_before_write_sees_earlier_run(self):
        # Within the second run the read precedes a write to the same
        # address; it must verify against run one's value, not run two's.
        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=1)
        engine = SimulationEngine(oram, verify=True)
        engine.run([Request.write(5, b"old")])
        engine.run([Request.read(5), Request.write(5, b"new"), Request.read(5)])
        engine.run([Request.read(5)])  # and the update carries forward

    def test_cross_run_verify_still_catches_lies(self):
        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=1)
        engine = SimulationEngine(oram, verify=True)
        engine.run([Request.write(3, b"truth")])
        oram.write(3, b"corrupted")  # mutate behind the engine's back
        with pytest.raises(VerificationError):
            engine.run([Request.read(3)])


class TestSynchronousPath:
    def test_baseline_verified(self):
        oram = build_path_oram(n_blocks=128, memory_blocks=32, seed=1)
        rng = DeterministicRandom(3)
        requests = list(read_write_mix(128, 150, rng, write_ratio=0.4, hot_blocks=20))
        metrics = run_workload(oram, requests, verify=True)
        assert metrics.requests_served == 150
        assert metrics.io_reads > 0 and metrics.io_writes > 0

    def test_io_accounting_matches_store(self):
        oram = build_path_oram(n_blocks=128, memory_blocks=32, seed=1)
        engine = SimulationEngine(oram)
        metrics = engine.run([Request.read(5)])
        z, levels = 4, oram.storage_levels
        assert metrics.io_reads == z * levels
        assert metrics.io_writes == z * levels
        assert metrics.mem_accesses > 0

    def test_total_time_is_clock_delta(self):
        oram = build_path_oram(n_blocks=128, memory_blocks=32, seed=1)
        engine = SimulationEngine(oram)
        metrics = engine.run([Request.read(1), Request.read(2)])
        assert metrics.total_time_us == pytest.approx(oram.clock.now_us)


class TestShuffleSeparation:
    def test_access_io_excludes_shuffle_runs(self):
        oram = build_horam(n_blocks=512, mem_tree_blocks=128, seed=4)
        rng = DeterministicRandom(5)
        requests = list(
            hotspot(512, 10 * oram.period_capacity, rng, hot_blocks=40, hot_probability=0.6)
        )
        metrics = SimulationEngine(oram).run(requests)
        assert metrics.shuffle_count >= 1
        # Access-period I/O is single-block loads only: reads equal cycles
        # and writes are zero (all storage writes happen inside shuffles).
        assert metrics.io_reads == metrics.cycles
        assert metrics.io_writes == 0
        assert metrics.shuffle_io_writes > 0

    def test_engine_requires_hierarchy(self):
        class Bare:
            pass

        with pytest.raises(ValueError):
            SimulationEngine(Bare())
