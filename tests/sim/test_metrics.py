"""Metrics bookkeeping tests."""

import pytest

from repro.sim.metrics import Metrics, TierTimes


class TestTierTimes:
    def test_add(self):
        a = TierTimes(mem_us=10.0, io_us=5.0)
        a.add(TierTimes(mem_us=1.0, io_us=2.0))
        assert a.mem_us == 11.0 and a.io_us == 7.0

    def test_serial_vs_overlapped(self):
        t = TierTimes(mem_us=30.0, io_us=100.0)
        assert t.serial_us == 130.0
        assert t.overlapped_us == 100.0


class TestDerived:
    def test_io_accesses_and_latency(self):
        m = Metrics(io_reads=8, io_writes=2, io_time_us=1000.0)
        assert m.io_accesses == 10
        assert m.avg_io_latency_us == pytest.approx(100.0)

    def test_latency_safe_when_no_io(self):
        assert Metrics().avg_io_latency_us == 0.0

    def test_access_time_excludes_shuffle(self):
        m = Metrics(total_time_us=1000.0, shuffle_time_us=400.0)
        assert m.access_time_us == pytest.approx(600.0)

    def test_dummy_ratios(self):
        m = Metrics(scheduled_hits=10, dummy_hits=4, scheduled_misses=5, dummy_misses=1)
        assert m.dummy_hit_ratio == pytest.approx(0.4)
        assert m.dummy_miss_ratio == pytest.approx(0.2)
        assert Metrics().dummy_hit_ratio == 0.0


class TestCombinators:
    def test_merge_sums_and_maxes(self):
        a = Metrics(io_reads=1, stash_peak=5)
        b = Metrics(io_reads=2, stash_peak=3)
        merged = a.merge(b)
        assert merged.io_reads == 3
        assert merged.stash_peak == 5

    def test_merge_unions_extra(self):
        a = Metrics(extra={"x": 1})
        b = Metrics(extra={"y": 2})
        assert a.merge(b).extra == {"x": 1, "y": 2}

    def test_merge_sums_numeric_extra(self):
        a = Metrics(extra={"dummy_pool_exhausted": 2})
        b = Metrics(extra={"dummy_pool_exhausted": 3})
        assert a.merge(b).extra == {"dummy_pool_exhausted": 5}

    def test_merge_keeps_bool_extras_as_flags(self):
        # bool subclasses int: without the explicit exclusion a True flag
        # merged across two shards would come back as 2 (and lose boolness).
        a = Metrics(extra={"hardware_limited": True, "n": 1})
        b = Metrics(extra={"hardware_limited": True, "n": 2})
        merged = a.merge(b).extra
        assert merged["hardware_limited"] is True
        assert merged["n"] == 3

    def test_merge_bool_last_wins_even_against_numbers(self):
        # Mixed flag/number never sums: the later value wins outright.
        a = Metrics(extra={"flag": 1})
        b = Metrics(extra={"flag": False})
        assert a.merge(b).extra["flag"] is False
        c = Metrics(extra={"flag": True})
        d = Metrics(extra={"flag": 1})
        assert c.merge(d).extra["flag"] == 1

    def test_diff(self):
        before = Metrics(io_reads=10, cycles=3, stash_peak=4)
        after = Metrics(io_reads=25, cycles=9, stash_peak=6)
        delta = after.diff(before)
        assert delta.io_reads == 15
        assert delta.cycles == 6
        assert delta.stash_peak == 6  # peaks keep the current value

    def test_copy_is_independent(self):
        m = Metrics(io_reads=1, extra={"k": 1})
        c = m.copy()
        c.io_reads = 99
        c.extra["k"] = 99
        assert m.io_reads == 1 and m.extra["k"] == 1

    def test_record_stash(self):
        m = Metrics()
        m.record_stash(4)
        m.record_stash(2)
        assert m.stash_peak == 4


class TestSerialization:
    def test_to_dict_includes_derived(self):
        m = Metrics(io_reads=4, io_time_us=200.0)
        d = m.to_dict()
        assert d["io_accesses"] == 4
        assert d["avg_io_latency_us"] == pytest.approx(50.0)

    def test_summary_lines_mention_key_numbers(self):
        m = Metrics(requests_served=42, io_reads=7)
        text = "\n".join(m.summary_lines())
        assert "42" in text and "7" in text


class TestFaultStatsAbsorption:
    def test_none_is_a_noop(self):
        m = Metrics()
        m.absorb_fault_stats(None)
        assert m.extra == {}

    def test_surfaces_retry_and_backoff_counters(self):
        from repro.storage.faults import FaultStats

        m = Metrics()
        m.absorb_fault_stats(
            FaultStats(retries=3, escalations=1, injected_delay_us=250.0)
        )
        assert m.extra["fault_retries"] == 3
        assert m.extra["fault_escalations"] == 1
        assert m.extra["fault_injected_delay_us"] == 250.0
        assert "fault_crashes" in m.extra and "fault_hangs" in m.extra

    def test_absorb_overwrites_instead_of_summing(self):
        from repro.storage.faults import FaultStats

        m = Metrics()
        m.absorb_fault_stats(FaultStats(retries=3))
        m.absorb_fault_stats(FaultStats(retries=5))  # cumulative snapshot
        assert m.extra["fault_retries"] == 5
