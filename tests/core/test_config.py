"""HORAMConfig validation tests."""

import pytest

from repro.core.config import HORAMConfig
from repro.core.stages import StageSchedule


class TestValidation:
    def test_defaults_are_the_papers(self):
        config = HORAMConfig(n_blocks=1024, mem_tree_blocks=256)
        assert config.bucket_size == 4
        assert config.shuffle_algorithm == "cache"
        assert config.shuffle_period_ratio == 1
        assert config.average_c == pytest.approx(3.94, abs=0.01)

    def test_memory_must_be_smaller_than_dataset(self):
        with pytest.raises(ValueError):
            HORAMConfig(n_blocks=256, mem_tree_blocks=256)

    def test_memory_must_hold_two_buckets(self):
        with pytest.raises(ValueError):
            HORAMConfig(n_blocks=256, mem_tree_blocks=4)

    def test_unknown_shuffle_rejected(self):
        with pytest.raises(ValueError):
            HORAMConfig(n_blocks=256, mem_tree_blocks=64, shuffle_algorithm="riffle")

    def test_ratio_must_be_positive(self):
        with pytest.raises(ValueError):
            HORAMConfig(n_blocks=256, mem_tree_blocks=64, shuffle_period_ratio=0)

    def test_window_must_fit_hit_and_miss(self):
        with pytest.raises(ValueError):
            HORAMConfig(n_blocks=256, mem_tree_blocks=64, prefetch_window=1)

    def test_positive_sizes(self):
        with pytest.raises(ValueError):
            HORAMConfig(n_blocks=0, mem_tree_blocks=64)
        with pytest.raises(ValueError):
            HORAMConfig(n_blocks=256, mem_tree_blocks=64, payload_bytes=0)
        with pytest.raises(ValueError):
            HORAMConfig(n_blocks=256, mem_tree_blocks=64, modeled_block_bytes=0)


class TestWindowFor:
    def test_default_is_three_c(self):
        config = HORAMConfig(n_blocks=256, mem_tree_blocks=64)
        assert config.window_for(3) == 9  # the paper's example: c=3, d=9
        assert config.window_for(5) == 15

    def test_explicit_window(self):
        config = HORAMConfig(n_blocks=256, mem_tree_blocks=64, prefetch_window=12)
        assert config.window_for(3) == 12

    def test_explicit_window_never_below_c_plus_one(self):
        config = HORAMConfig(n_blocks=256, mem_tree_blocks=64, prefetch_window=4)
        assert config.window_for(5) == 6

    def test_custom_stage_schedule(self):
        config = HORAMConfig(
            n_blocks=256,
            mem_tree_blocks=64,
            stages=StageSchedule.fixed(2),
        )
        assert config.average_c == 2.0
