"""Executor equivalence: the parallel runtime must be invisible.

The contract the tentpole rests on: for the batched submit/drain pattern
(the engine, the benchmarks, the conformance harness), a
``ParallelExecutor`` fleet produces bit-identical observables to the
``SerialExecutor`` fleet built from the same ``(seed, n_shards)`` --
retired results, fleet served log, per-shard metrics and served/latency
logs, merged metrics, and the full per-shard bus traces.  One recoverable
fault-injection scenario is routed through the parallel runtime too:
faults perturb only timing, so logical results must still match the
conformance oracle.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core.executor import ParallelExecutor, SerialExecutor
from repro.core.sharding import build_sharded_horam
from repro.crypto.random import DeterministicRandom
from repro.oram.base import initial_payload
from repro.sim.engine import SimulationEngine
from repro.storage.faults import FaultPlan
from repro.testing.scenario import ScenarioRunner, ScenarioSpec
from repro.testing.stacks import StackSpec, build_stack
from repro.workload.generators import WorkloadSpec, hotspot, uniform


def _build(executor, n_shards, n_blocks=1024, mem=128, trace=False, **kwargs):
    return build_sharded_horam(
        n_blocks=n_blocks,
        mem_tree_blocks=mem,
        n_shards=n_shards,
        seed=42,
        executor=executor,
        trace=trace,
        **kwargs,
    )


def _stream(n_blocks, count, seed=7, write_ratio=0.25):
    return list(
        hotspot(
            n_blocks,
            count,
            DeterministicRandom(seed),
            hot_blocks=48,
            write_ratio=write_ratio,
        )
    )


def _trace_digest(sharded) -> str:
    h = hashlib.blake2b(digest_size=16)
    for index, shard in enumerate(sharded.shards):
        for e in shard.hierarchy.trace.events:
            h.update(
                f"t{index}:{e.op}:{e.tier}:{e.slot}:{e.size}:{e.time_us!r}:{e.label};".encode()
            )
    return h.hexdigest()


def _observables(sharded, engine, metrics):
    return {
        "results": list(engine.results),
        "served_log": sharded.served_log,
        "merged_metrics": metrics.to_dict(),
        "shard_metrics": [m.to_dict() for m in sharded.shard_metrics()],
        "latency_logs": [list(s.latency_log) for s in sharded.shards],
        "percentiles": sharded.latency_percentiles(),
        "load_balance": sharded.load_balance(),
        "trace": _trace_digest(sharded),
    }


def _run_fleet(executor, n_shards, requests=350, trace=True, lockstep=True):
    sharded = _build(executor, n_shards, trace=trace, lockstep=lockstep)
    try:
        engine = SimulationEngine(sharded, verify=True, record_results=True)
        metrics = engine.run(_stream(sharded.n_blocks, requests))
        return _observables(sharded, engine, metrics)
    finally:
        sharded.close()


class TestParallelEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_bit_identical_to_serial(self, n_shards):
        """Retired results, served_log, metrics and traces all match."""
        serial = _run_fleet("serial", n_shards)
        parallel = _run_fleet("parallel", n_shards)
        for key in serial:
            assert serial[key] == parallel[key], f"{key} diverged at {n_shards} shards"

    def test_non_lockstep_matches_serial(self):
        serial = _run_fleet("serial", 2, lockstep=False)
        parallel = _run_fleet("parallel", 2, lockstep=False)
        assert serial == parallel

    def test_cross_run_and_sync_reads_match(self):
        """Two engine runs plus synchronous reads stay equivalent."""
        outcomes = {}
        for executor in ("serial", "parallel"):
            sharded = _build(executor, 2)
            try:
                engine = SimulationEngine(sharded, verify=True, record_results=True)
                engine.run(_stream(sharded.n_blocks, 200, seed=5))
                engine.run(_stream(sharded.n_blocks, 200, seed=6))
                sync = [sharded.read(addr) for addr in (0, 1, 7, 1023)]
                outcomes[executor] = (
                    list(engine.results),
                    sync,
                    sharded.metrics.to_dict(),
                )
            finally:
                sharded.close()
        assert outcomes["serial"] == outcomes["parallel"]

    def test_lockstep_cycles_equalize_across_workers(self):
        sharded = _build("parallel", 4)
        try:
            SimulationEngine(sharded).run(
                list(uniform(sharded.n_blocks, 200, DeterministicRandom(3), write_ratio=0.3))
            )
            cycles = {shard.metrics.cycles for shard in sharded.shards}
            assert len(cycles) == 1
        finally:
            sharded.close()

    def test_force_shuffle_matches_serial(self):
        outcomes = {}
        for executor in ("serial", "parallel"):
            sharded = _build(executor, 2)
            try:
                SimulationEngine(sharded).run(_stream(sharded.n_blocks, 120))
                sharded.force_shuffle()
                value = sharded.read(17)
                outcomes[executor] = (value, sharded.metrics.to_dict())
            finally:
                sharded.close()
        assert outcomes["serial"] == outcomes["parallel"]

    def test_writes_round_trip_through_workers(self):
        sharded = _build("parallel", 2)
        try:
            sharded.write(5, b"hello")
            sharded.write(6, b"world")
            assert sharded.read(5) == b"hello".ljust(16, b"\x00")
            assert sharded.read(6) == b"world".ljust(16, b"\x00")
        finally:
            sharded.close()


class TestParallelFaults:
    def test_fault_scenario_through_parallel_executor(self):
        """Recoverable faults in the workers leave results oracle-exact."""
        spec = ScenarioSpec(
            name="parallel-faults-equivalence",
            stack=StackSpec(
                protocol="sharded", n_blocks=1024, mem_blocks=128,
                n_shards=2, executor="parallel", seed=11,
            ),
            workload=WorkloadSpec(
                kind="hotspot", n_blocks=1024, count=220, seed=78, write_ratio=0.25,
            ),
            faults=FaultPlan(seed=9, read_error_rate=0.05, latency_spike_rate=0.05),
        )
        result = ScenarioRunner().run(spec)
        assert result.ok, "\n".join(result.failures)
        assert result.fault_stats is not None
        assert result.fault_stats.read_faults + result.fault_stats.latency_spikes > 0

    def test_faulted_results_match_serial(self):
        """Timing-only faults: served payloads identical across executors."""
        plan = FaultPlan(seed=4, read_error_rate=0.05, latency_spike_rate=0.05)
        outcomes = {}
        for executor in ("serial", "parallel"):
            stack = build_stack(
                StackSpec(
                    protocol="sharded", n_blocks=1024, mem_blocks=128,
                    n_shards=2, executor=executor, seed=11,
                )
            )
            try:
                stack.protocol.executor.install_fault_plan(plan)
                engine = SimulationEngine(stack.protocol, record_results=True)
                engine.run(_stream(1024, 200, seed=9))
                outcomes[executor] = (
                    list(engine.results),
                    stack.protocol.served_log,
                )
            finally:
                stack.close()
        assert outcomes["serial"] == outcomes["parallel"]


    def test_worker_failure_poisons_fleet_instead_of_hanging(self):
        """An unrecoverable worker fault must not leave drain() spinning."""
        from repro.storage.faults import UnrecoverableFaultError

        sharded = _build("parallel", 2)
        try:
            sharded.executor.install_fault_plan(
                FaultPlan(seed=1, read_error_rate=1.0)  # escalates immediately
            )
            for request in _stream(sharded.n_blocks, 40):
                sharded.submit(request)
            with pytest.raises(UnrecoverableFaultError):
                sharded.drain()
            # The fleet is out of sync with its workers: further use fails
            # loudly (previously this spun forever in drain()).
            with pytest.raises(RuntimeError, match="broken"):
                sharded.drain()
            with pytest.raises(RuntimeError, match="broken"):
                sharded.read(0)
        finally:
            sharded.close()


class TestExecutorPlumbing:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            build_sharded_horam(
                n_blocks=512, mem_tree_blocks=128, n_shards=2, executor="threads"
            )

    def test_stack_spec_validates_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            StackSpec(protocol="sharded", executor="gpu")
        with pytest.raises(ValueError, match="sharded stacks only"):
            StackSpec(protocol="horam", executor="parallel")

    def test_parallel_label_and_describe(self):
        spec = StackSpec(protocol="sharded", n_shards=2, executor="parallel")
        assert spec.label().startswith("shardedx2-par")
        sharded = _build("parallel", 2)
        try:
            described = sharded.describe()
            assert described["executor"] == "parallel"
            assert described["n_shards"] == 2
        finally:
            sharded.close()

    def test_close_is_idempotent_and_context_managed(self):
        with _build("parallel", 2) as sharded:
            assert sharded.read(3) == initial_payload(3).ljust(16, b"\x00")
        sharded.close()  # second close must be a no-op

    def test_serial_executor_is_default(self):
        sharded = build_sharded_horam(n_blocks=512, mem_tree_blocks=128, n_shards=2)
        assert isinstance(sharded.executor, SerialExecutor)
        assert sharded.describe()["executor"] == "serial"

    def test_parallel_codec_facade_pads(self):
        sharded = _build("parallel", 2)
        try:
            assert sharded.codec.pad(b"ab") == b"ab".ljust(16, b"\x00")
            assert sharded.codec.payload_bytes == 16
            with pytest.raises(ValueError, match="exceeds"):
                sharded.codec.pad(b"x" * 17)
        finally:
            sharded.close()

    def test_empty_parallel_executor_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ParallelExecutor([])
