"""CheckpointStore retention and validated fallback (the supervisor's
recovery points): keep-last-K rotation must never garbage-collect the
newest *valid* checkpoint, and loading must fall back past torn or
corrupt newer ones."""

from __future__ import annotations

import shutil
import tempfile

import pytest

from repro.core.checkpoint import CheckpointError, CheckpointStore, snapshot_shard
from repro.core.sharding import build_sharded_horam


@pytest.fixture(scope="module")
def fleet():
    fleet = build_sharded_horam(
        n_blocks=256, mem_tree_blocks=64, n_shards=2, seed=7
    )
    yield fleet
    fleet.close()


@pytest.fixture
def store_root():
    root = tempfile.mkdtemp(prefix="horam-ckpt-store-")
    yield root
    shutil.rmtree(root, ignore_errors=True)


def _save(store, fleet):
    return store.save(snapshot_shard(fleet, 0))


def _corrupt(path):
    (path / "checkpoint.json").write_text("{ torn garbage")


class TestRotation:
    def test_keeps_newest_k(self, fleet, store_root):
        store = CheckpointStore(store_root, keep_last=3)
        for _ in range(5):
            _save(store, fleet)
        paths = store.paths()
        assert [p.name for p in paths] == ["ckpt-000002", "ckpt-000003", "ckpt-000004"]

    def test_sequence_numbers_stay_monotonic_after_prune(self, fleet, store_root):
        store = CheckpointStore(store_root, keep_last=1)
        for _ in range(3):
            _save(store, fleet)
        assert [p.name for p in store.paths()] == ["ckpt-000002"]
        # the next save continues the sequence, it does not reuse numbers
        _save(store, fleet)
        assert store.paths()[-1].name == "ckpt-000003"

    def test_keep_last_must_be_positive(self, store_root):
        with pytest.raises(ValueError):
            CheckpointStore(store_root, keep_last=0)


class TestNewestValidIsNeverCollected:
    @staticmethod
    def _torn_save(store, seq):
        """Simulate a crash mid-save: the directory exists, the manifest
        is garbage, and prune never ran for it."""
        path = store.root / f"ckpt-{seq:06d}"
        path.mkdir()
        (path / "checkpoint.json").write_text("{ torn mid-save")

    def test_prune_spares_older_valid_when_all_newer_are_torn(
        self, fleet, store_root
    ):
        store = CheckpointStore(store_root, keep_last=2)
        _save(store, fleet)  # ckpt-000000, the only good recovery point
        self._torn_save(store, 1)
        self._torn_save(store, 2)
        store.prune()
        assert "ckpt-000000" in [p.name for p in store.paths()]
        checkpoint, path = store.load_latest_valid()
        assert path.name == "ckpt-000000"
        assert checkpoint.kind == "shard"

    def test_retention_alone_would_have_rotated_it_out(self, fleet, store_root):
        store = CheckpointStore(store_root, keep_last=1)
        _save(store, fleet)  # ckpt-000000, valid
        self._torn_save(store, 1)
        store.prune()
        names = [p.name for p in store.paths()]
        # keep_last=1 keeps only the (torn) newest by count; the valid
        # ckpt-000000 must survive anyway.
        assert "ckpt-000000" in names
        assert store.load_latest_valid()[1].name == "ckpt-000000"


class TestValidatedFallback:
    def test_load_latest_valid_skips_corrupted_newest(self, fleet, store_root):
        store = CheckpointStore(store_root, keep_last=3)
        _save(store, fleet)
        _save(store, fleet)
        _corrupt(store.paths()[-1])
        checkpoint, path = store.load_latest_valid()
        assert path.name == "ckpt-000000"
        assert checkpoint.kind == "shard"

    def test_load_latest_valid_prefers_newest(self, fleet, store_root):
        store = CheckpointStore(store_root, keep_last=3)
        _save(store, fleet)
        _save(store, fleet)
        assert store.load_latest_valid()[1].name == "ckpt-000001"

    def test_all_corrupt_raises(self, fleet, store_root):
        store = CheckpointStore(store_root, keep_last=3)
        for _ in range(2):
            _save(store, fleet)
        for path in store.paths():
            _corrupt(path)
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            store.load_latest_valid()

    def test_empty_store_raises(self, store_root):
        store = CheckpointStore(store_root)
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            store.load_latest_valid()

    def test_torn_blob_detected_and_skipped(self, fleet, store_root):
        store = CheckpointStore(store_root, keep_last=3)
        _save(store, fleet)
        _save(store, fleet)
        blobs = sorted(store.paths()[-1].glob("*.bin"))
        assert blobs, "shard checkpoints carry store blobs"
        blobs[0].write_bytes(blobs[0].read_bytes()[:-1])  # torn tail
        checkpoint, path = store.load_latest_valid()
        assert path.name == "ckpt-000000"


class TestFallbackServesCorrectValues:
    def test_fallback_checkpoint_restores_journaled_writes(self, store_root):
        """End-to-end: a shard restored from an *older* checkpoint (the
        newest being corrupt) must still serve every journaled write --
        the supervisor's journal reaches back past the newest recovery
        point."""
        from repro.core.supervisor import FleetSupervisor, SupervisorConfig
        from repro.storage.faults import FaultPlan

        fleet = build_sharded_horam(
            n_blocks=256, mem_tree_blocks=64, n_shards=2, seed=3
        )
        supervisor = FleetSupervisor(
            fleet,
            store_root,
            SupervisorConfig(checkpoint_every_ops=8, max_restarts=1),
        )
        try:
            payload = supervisor.codec.payload_bytes
            expected = {}
            for i in range(40):
                addr = i % 16
                data = bytes([i % 251]) * payload
                supervisor.write(addr, data)
                expected[addr] = data
            for store in supervisor.stores:
                assert len(store.paths()) >= 2
                (store.paths()[-1] / "checkpoint.json").write_text("garbage")
            supervisor.install_fault_plan(
                FaultPlan(seed=0, crash_schedule=[3], crash_op_kind="any")
            )
            for addr in sorted(expected):
                assert supervisor.read(addr) == expected[addr]
            report = supervisor.recovery_report()
            assert report["restores"] == report["crashes_detected"] >= 1
            assert not supervisor.fenced
        finally:
            supervisor.close()
