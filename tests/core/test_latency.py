"""Latency percentile tests."""

import pytest

from repro.core.horam import build_horam
from repro.crypto.random import DeterministicRandom
from repro.oram.base import Request
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import percentile
from repro.workload.generators import hotspot


class TestPercentileHelper:
    def test_nearest_rank(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(values, 50) == 5.0
        assert percentile(values, 90) == 9.0
        assert percentile(values, 100) == 10.0
        assert percentile(values, 0) == 1.0

    def test_single_value(self):
        assert percentile([7], 99) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestProtocolLatencies:
    def test_percentiles_populated(self):
        oram = build_horam(n_blocks=512, mem_tree_blocks=128, seed=2)
        rng = DeterministicRandom(3)
        requests = list(hotspot(512, 400, rng, hot_blocks=30))
        SimulationEngine(oram).run(requests)
        p = oram.latency_percentiles()
        assert set(p) == {50, 90, 99}
        assert p[50] <= p[90] <= p[99]
        assert p[99] >= 1  # misses always wait at least one cycle

    def test_empty_log(self):
        oram = build_horam(n_blocks=512, mem_tree_blocks=128, seed=2)
        assert oram.latency_percentiles() == {50: 0.0, 90: 0.0, 99: 0.0}

    def test_miss_latency_exceeds_hit_latency(self):
        oram = build_horam(n_blocks=512, mem_tree_blocks=128, seed=2)
        # Request A misses; immediately repeat it so the repeat hits.
        first = oram.submit(Request.read(9))
        oram.drain()
        second = oram.submit(Request.read(9))
        oram.drain()
        assert first.latency_cycles >= 1  # load cycle + serve cycle
        assert second.latency_cycles <= first.latency_cycles
