"""Secure scheduler tests: fixed shape, selection priorities, padding."""

from repro.core.rob import EntryState, RobTable
from repro.core.scheduler import SecureScheduler
from repro.oram.base import Request


def make_scheduler(window=9):
    return SecureScheduler(window_for=lambda c: window)


def push(rob, addrs):
    return [rob.push(Request.read(a), 0) for a in addrs]


class TestShape:
    def test_shape_always_c_and_one(self):
        rob = RobTable()
        push(rob, [1, 2, 3])
        cached = {1, 2}.__contains__
        for c in (1, 3, 5):
            plan = make_scheduler().plan(RobTable(), c, cached, set())
            assert plan.shape() == (c, 1)

    def test_all_dummies_when_empty(self):
        plan = make_scheduler().plan(RobTable(), 3, lambda a: False, set())
        assert plan.dummy_hits == 3
        assert plan.dummy_miss
        assert plan.shape() == (3, 1)


class TestSelection:
    def test_hits_and_miss_split(self):
        rob = RobTable()
        push(rob, [1, 2, 3, 4])
        cached = {1, 3}.__contains__
        plan = make_scheduler().plan(rob, 2, cached, set())
        assert [e.addr for e in plan.hits] == [1, 3]
        assert plan.miss.addr == 2
        assert plan.dummy_hits == 0 and not plan.dummy_miss

    def test_miss_marked_inflight(self):
        rob = RobTable()
        entries = push(rob, [9])
        plan = make_scheduler().plan(rob, 1, lambda a: False, set())
        assert plan.miss is entries[0]
        assert entries[0].state is EntryState.MISS_INFLIGHT

    def test_ready_entries_are_priority_hits(self):
        rob = RobTable()
        entries = push(rob, [7, 8])
        entries[0].state = EntryState.READY
        plan = make_scheduler().plan(rob, 1, lambda a: False, set())
        assert plan.hits == [entries[0]]
        assert plan.miss is entries[1]

    def test_second_request_to_missing_addr_waits(self):
        rob = RobTable()
        entries = push(rob, [5, 5])
        plan = make_scheduler().plan(rob, 2, lambda a: False, set())
        assert plan.miss is entries[0]
        # The duplicate must not be scheduled as a second miss or a hit.
        assert entries[1].state is EntryState.PENDING
        assert plan.dummy_hits == 2

    def test_inflight_addresses_skipped(self):
        rob = RobTable()
        entries = push(rob, [5, 6])
        plan = make_scheduler().plan(rob, 1, lambda a: False, {5})
        assert plan.miss is entries[1]
        assert entries[0].state is EntryState.PENDING

    def test_one_miss_per_cycle(self):
        rob = RobTable()
        push(rob, [1, 2, 3])
        plan = make_scheduler().plan(rob, 1, lambda a: False, set())
        assert plan.miss.addr == 1
        # Others stay pending for later cycles.
        assert plan.dummy_hits == 1


class TestSaturation:
    """The lookahead window under a backlog of stalled misses."""

    def test_inflight_entries_do_not_starve_later_misses(self):
        # Fill the front of the window with MISS_INFLIGHT entries (their
        # loads were scheduled in earlier cycles and have not landed); the
        # scheduler must still pick the first still-pending miss behind
        # them instead of issuing a dummy load.
        rob = RobTable()
        entries = push(rob, [1, 2, 3, 4, 5])
        for entry in entries[:3]:
            entry.state = EntryState.MISS_INFLIGHT
        plan = make_scheduler(window=9).plan(rob, 2, lambda a: False, set())
        assert plan.miss is entries[3]
        assert not plan.dummy_miss
        assert plan.shape() == (2, 1)
        # Stalled entries stay untouched, waiting for their loads.
        for entry in entries[:3]:
            assert entry.state is EntryState.MISS_INFLIGHT

    def test_window_full_of_inflight_pads_with_dummy(self):
        rob = RobTable()
        entries = push(rob, [1, 2, 3])
        for entry in entries:
            entry.state = EntryState.MISS_INFLIGHT
        plan = make_scheduler(window=3).plan(rob, 3, lambda a: False, set())
        assert plan.miss is None and plan.dummy_miss
        assert plan.shape() == (3, 1)

    def test_saturated_window_mixed_states_keeps_shape(self):
        rob = RobTable()
        entries = push(rob, list(range(12)))
        entries[0].state = EntryState.MISS_INFLIGHT
        entries[1].state = EntryState.READY
        entries[4].state = EntryState.MISS_INFLIGHT
        cached = {2, 3}.__contains__
        plan = make_scheduler(window=9).plan(rob, 3, cached, set())
        assert plan.shape() == (3, 1)
        # READY and cached entries fill the hit slots...
        assert [e.addr for e in plan.hits] == [1, 2, 3]
        # ...and the first schedulable pending miss behind the stalled
        # ones gets the load slot.
        assert plan.miss is entries[5]


class TestWindowLimit:
    def test_lookahead_respected(self):
        rob = RobTable()
        push(rob, [1, 2, 3, 4, 5])
        cached = {5}.__contains__  # a hit exists but beyond the window
        plan = make_scheduler(window=3).plan(rob, 2, cached, set())
        assert plan.hits == []
        assert plan.dummy_hits == 2
        assert plan.miss.addr == 1

    def test_wider_window_finds_the_hit(self):
        rob = RobTable()
        push(rob, [1, 2, 3, 4, 5])
        cached = {5}.__contains__
        plan = make_scheduler(window=5).plan(rob, 2, cached, set())
        assert [e.addr for e in plan.hits] == [5]

    def test_hits_capped_at_c(self):
        rob = RobTable()
        push(rob, [1, 2, 3, 4])
        plan = make_scheduler().plan(rob, 2, lambda a: True, set())
        assert len(plan.hits) == 2
        assert plan.dummy_miss  # everything cached, nothing to load
