"""Sharded serving-layer tests (ShardedHORAM)."""

import pytest

from repro.core.multiuser import MultiUserFrontEnd
from repro.core.sharding import ShardedHORAM, build_sharded_horam, shard_block_counts
from repro.crypto.random import DeterministicRandom
from repro.oram.base import ORAMError, Request, initial_payload
from repro.sim.engine import SimulationEngine
from repro.workload.generators import hotspot, uniform, zipfian

WORKLOADS = {
    "uniform": lambda n, count, rng: uniform(n, count, rng, write_ratio=0.3),
    "hotspot": lambda n, count, rng: hotspot(
        n, count, rng, hot_blocks=max(8, n // 16), write_ratio=0.3
    ),
    "zipf": lambda n, count, rng: zipfian(n, count, rng, write_ratio=0.3),
}


def build(n_shards: int, n_blocks: int = 1024, mem: int = 128, **kwargs) -> ShardedHORAM:
    return build_sharded_horam(
        n_blocks=n_blocks, mem_tree_blocks=mem, n_shards=n_shards, seed=5, **kwargs
    )


class TestConstruction:
    def test_shard_block_counts_cover_space(self):
        for n_shards in (1, 2, 3, 4, 8):
            counts = shard_block_counts(1000, n_shards)
            assert sum(counts) == 1000
            assert max(counts) - min(counts) <= 1

    def test_shard_seeds_differ(self):
        sharded = build(4)
        keys = {shard.rng._key for shard in sharded.shards}
        assert len(keys) == 4

    def test_too_many_shards_rejected(self):
        with pytest.raises(ValueError):
            build_sharded_horam(n_blocks=256, mem_tree_blocks=128, n_shards=32)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            build_sharded_horam(n_blocks=256, mem_tree_blocks=64, n_shards=0)

    def test_describe_reports_fleet(self):
        sharded = build(2)
        info = sharded.describe()
        assert info["n_shards"] == 2
        assert sum(info["shard_n_blocks"]) == sharded.n_blocks


class TestRouting:
    def test_striping_roundtrip(self):
        sharded = build(4)
        for addr in (0, 1, 5, 1023):
            shard = sharded.shard_of(addr)
            local = sharded.local_addr(addr)
            assert sharded.global_addr(shard, local) == addr

    def test_out_of_range_rejected(self):
        sharded = build(2)
        with pytest.raises(ORAMError):
            sharded.submit(Request.read(sharded.n_blocks))

    def test_retired_entries_carry_global_addresses(self):
        sharded = build(4)
        entries = [sharded.submit(Request.read(addr)) for addr in (3, 513, 1022)]
        sharded.drain()
        assert [entry.addr for entry in entries] == [3, 513, 1022]
        for entry in entries:
            assert entry.result == sharded.codec.pad(initial_payload(entry.addr))

    def test_retirement_stream_in_submit_order(self):
        sharded = build(4)
        addrs = [7, 100, 3, 513, 801, 64]
        for addr in addrs:
            sharded.submit(Request.read(addr))
        retired = sharded.drain()
        assert [entry.addr for entry in retired] == addrs


@pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
class TestVerifiedAcrossRuns:
    def test_two_sequential_runs_verify(self, n_shards, workload):
        """The acceptance gate: verify=True across sequential runs.

        The second run re-reads addresses the first run wrote, which
        exercises the engine's cross-run replay (reads must see the
        earlier run's writes, not the initial payload).
        """
        sharded = build(n_shards, n_blocks=512, mem=64)
        engine = SimulationEngine(sharded, verify=True)
        make = WORKLOADS[workload]
        first = engine.run(make(512, 150, DeterministicRandom(100)))
        second = engine.run(make(512, 150, DeterministicRandom(101)))
        assert first.requests_served == 150
        assert second.requests_served == 150


class TestAggregation:
    def test_metrics_sum_across_shards(self):
        sharded = build(4)
        engine = SimulationEngine(sharded)
        engine.run(uniform(1024, 200, DeterministicRandom(3)))
        merged = sharded.metrics
        per_shard = sharded.shard_metrics()
        assert merged.requests_served == sum(m.requests_served for m in per_shard) == 200
        assert merged.cycles == sum(m.cycles for m in per_shard)
        assert merged.shuffle_count == sum(m.shuffle_count for m in per_shard)

    def test_engine_io_accounting_spans_shards(self):
        sharded = build(2)
        metrics = SimulationEngine(sharded).run(uniform(1024, 120, DeterministicRandom(4)))
        # Access-period loads are one random read per cycle on every
        # stepped shard; shuffle traffic is subtracted out.
        assert metrics.io_reads == metrics.cycles
        assert metrics.io_writes == 0

    def test_load_balance_striping_spreads_hotspot(self):
        sharded = build(4)
        SimulationEngine(sharded).run(
            hotspot(1024, 400, DeterministicRandom(6), hot_blocks=32)
        )
        balance = sharded.load_balance()
        assert sum(balance["per_shard_served"]) == 400
        # Striping interleaves the hot region over all shards.
        assert balance["imbalance"] < 1.5

    def test_latency_percentiles_merge(self):
        sharded = build(2)
        SimulationEngine(sharded).run(uniform(1024, 60, DeterministicRandom(7)))
        pct = sharded.latency_percentiles()
        assert set(pct) == {50, 90, 99}
        assert pct[50] <= pct[99]

    def test_no_fence_reporting_when_all_live(self):
        sharded = build(2)
        SimulationEngine(sharded).run(uniform(1024, 40, DeterministicRandom(8)))
        assert "fenced_shards" not in sharded.metrics.extra
        balance = sharded.load_balance()
        assert balance["fenced_shards"] == []
        assert balance["shards"] == [0, 1]


class TestFencedAggregation:
    """Fleet aggregation must not silently read dead shards' mirrors."""

    def _drain_some(self, sharded, count=60):
        SimulationEngine(sharded).run(uniform(1024, count, DeterministicRandom(9)))

    def test_metrics_skip_fenced_shard(self):
        sharded = build(2)
        self._drain_some(sharded)
        live_before = sharded.shard_metrics()
        sharded.fence_shard(1)
        merged = sharded.metrics
        assert merged.requests_served == live_before[0].requests_served
        assert merged.extra["fenced_shards"] == [1]

    def test_load_balance_skips_fenced_shard(self):
        sharded = build(4)
        self._drain_some(sharded, 120)
        sharded.fence_shard(2)
        balance = sharded.load_balance()
        assert balance["shards"] == [0, 1, 3]
        assert balance["fenced_shards"] == [2]
        assert len(balance["per_shard_served"]) == 3
        assert len(balance["per_shard_cycles"]) == 3
        assert len(balance["per_shard_clock_us"]) == 3

    def test_latency_percentiles_skip_fenced_shard(self):
        sharded = build(2)
        self._drain_some(sharded)
        shard0_log = list(sharded.shards[0].latency_log)
        sharded.fence_shard(1)
        pct = sharded.latency_percentiles()
        from repro.sim.metrics import percentile

        assert pct == {int(q): percentile(shard0_log, q) for q in (50, 90, 99)}

    def test_parallel_executor_fenced_mirror_excluded(self):
        from repro.core.sharding import build_sharded_horam

        sharded = build_sharded_horam(
            n_blocks=1024,
            mem_tree_blocks=256,
            n_shards=2,
            seed=31,
            executor="parallel",
        )
        with sharded:
            self._drain_some(sharded, 40)
            mirror_served = sharded.shards[1].metrics.requests_served
            assert mirror_served > 0  # the stale mirror has real counts
            live_served = sharded.shards[0].metrics.requests_served
            sharded.fence_shard(1)
            merged = sharded.metrics
            assert merged.requests_served == live_served
            assert merged.extra["fenced_shards"] == [1]
            balance = sharded.load_balance()
            assert balance["shards"] == [0]
            assert balance["fenced_shards"] == [1]
            assert balance["per_shard_served"] == [live_served]


class TestLockstep:
    def test_lockstep_keeps_cycle_counts_equal(self):
        """In lockstep mode every shard runs the same number of cycles,
        so per-shard traffic reveals nothing about routing."""
        sharded = build(4)
        # All traffic targets shard 0 (addresses = 0 mod 4).
        for i in range(40):
            sharded.submit(Request.read(4 * i))
        sharded.drain()
        cycles = {shard.metrics.cycles for shard in sharded.shards}
        assert len(cycles) == 1

    def test_non_lockstep_steps_only_busy_shards(self):
        sharded = build(4, lockstep=False)
        for i in range(40):
            sharded.submit(Request.read(4 * i))
        sharded.drain()
        cycles = [shard.metrics.cycles for shard in sharded.shards]
        assert cycles[0] > 0
        assert cycles[1] == cycles[2] == cycles[3] == 0

    def test_lockstep_shape_is_c_1_every_cycle_per_shard(self):
        """Cycle shape stays exactly (c, 1) on every shard of a sharded
        run, including fully padded lockstep cycles."""
        sharded = build(2, n_blocks=512, mem=64)
        shapes: list[tuple[int, tuple[int, int]]] = []
        for shard in sharded.shards:
            inner_plan = shard.scheduler.plan

            def spy(rob, c, is_cached, inflight, _inner=inner_plan):
                plan = _inner(rob, c, is_cached, inflight)
                shapes.append((plan.c, plan.shape()))
                return plan

            shard.scheduler.plan = spy
        SimulationEngine(sharded).run(
            hotspot(512, 120, DeterministicRandom(8), hot_blocks=30)
        )
        assert shapes
        for c, shape in shapes:
            assert shape == (c, 1)


class TestDeterminism:
    def test_same_seed_same_results(self):
        def run_once():
            sharded = build(4, n_blocks=512, mem=64)
            stream = list(
                hotspot(512, 120, DeterministicRandom(12), hot_blocks=24, write_ratio=0.4)
            )
            entries = [sharded.submit(r) for r in stream]
            sharded.drain()
            return [e.result for e in entries], sharded.metrics.cycles

        first_results, first_cycles = run_once()
        second_results, second_cycles = run_once()
        assert first_results == second_results
        assert first_cycles == second_cycles


class TestEdgeCases:
    def test_n_blocks_not_divisible_by_shard_count(self):
        """Uneven striping (1000 blocks over 3 shards) serves verified."""
        sharded = build_sharded_horam(
            n_blocks=1000, mem_tree_blocks=96, n_shards=3, seed=5
        )
        counts = [shard.n_blocks for shard in sharded.shards]
        assert sum(counts) == 1000
        assert max(counts) - min(counts) == 1
        engine = SimulationEngine(sharded, verify=True)
        metrics = engine.run(
            uniform(1000, 150, DeterministicRandom(21), write_ratio=0.3)
        )
        assert metrics.requests_served == 150
        # The tail addresses live on the short shards; hit them explicitly.
        for addr in (997, 998, 999):
            assert sharded.read(addr) == sharded.codec.pad(initial_payload(addr))

    def test_single_shard_bit_identical_to_plain_horam(self):
        """ShardedHORAM with one shard is HybridORAM plus pass-through
        routing: same served log, cycles, metrics and results."""
        from repro.core.horam import build_horam

        seed = 9
        derived = DeterministicRandom(seed).spawn("shard-0").next_word()
        sharded = build_sharded_horam(
            n_blocks=512, mem_tree_blocks=128, n_shards=1, seed=seed
        )
        plain = build_horam(n_blocks=512, mem_tree_blocks=128, seed=derived)
        stream = list(
            hotspot(512, 200, DeterministicRandom(31), hot_blocks=24, write_ratio=0.3)
        )
        sharded_entries = [sharded.submit(r) for r in stream]
        sharded.drain()
        plain_entries = [plain.submit(r) for r in stream]
        plain.drain()
        assert [e.result for e in sharded_entries] == [e.result for e in plain_entries]
        assert sharded.shards[0].served_log == plain.served_log
        assert sharded.served_log == [(0, a, c) for a, c in plain.served_log]
        assert sharded.metrics.to_dict() == plain.metrics.to_dict()
        assert sharded.hierarchy.clock.now_us == plain.hierarchy.clock.now_us

    def test_zero_request_drain(self):
        """Draining an idle fleet is a no-op: nothing retires, no cycles
        run, the clock stays at zero."""
        sharded = build(4)
        assert not sharded.has_work()
        assert sharded.drain() == []
        assert sharded.retire() == []
        assert sharded.metrics.cycles == 0
        assert sharded.hierarchy.clock.now_us == 0.0

    def test_served_log_uses_global_addresses(self):
        sharded = build(4)
        addrs = [3, 514, 1021]
        for addr in addrs:
            sharded.submit(Request.read(addr))
        sharded.drain()
        # entries come per shard, in shard order
        logged = [(shard, addr) for shard, addr, _cycle in sharded.served_log]
        assert logged == sorted((addr % 4, addr) for addr in addrs)


class TestFrontEndIntegration:
    def test_multiuser_front_end_on_sharded_backend(self):
        sharded = build(4, n_blocks=512, mem=128)
        front = MultiUserFrontEnd(sharded)
        front.register_user(0, allowed=range(0, 256))
        front.register_user(1, allowed=range(256, 512))
        for i in range(25):
            front.submit(0, Request.read(i))
            front.submit(1, Request.read(256 + i))
        retired = front.pump()
        assert len(retired) == 50
        assert front.stats(0).served == 25
        assert front.stats(1).served == 25
        for entry in retired:
            assert entry.result == sharded.codec.pad(initial_payload(entry.addr))
