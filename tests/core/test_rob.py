"""ROB table tests: windowing, in-order retirement, demotion."""

from repro.core.rob import EntryState, RobTable
from repro.oram.base import Request


def push_reads(rob, addrs, cycle=0):
    return [rob.push(Request.read(a), cycle) for a in addrs]


class TestWindow:
    def test_window_in_program_order(self):
        rob = RobTable()
        push_reads(rob, [5, 6, 7, 8])
        window = rob.window(3)
        assert [e.addr for e in window] == [5, 6, 7]

    def test_window_skips_served(self):
        rob = RobTable()
        entries = push_reads(rob, [1, 2, 3, 4])
        entries[1].state = EntryState.SERVED
        window = rob.window(3)
        assert [e.addr for e in window] == [1, 3, 4]

    def test_window_empty_and_zero(self):
        rob = RobTable()
        assert rob.window(4) == []
        push_reads(rob, [1])
        assert rob.window(0) == []


class TestRetirement:
    def test_retires_in_order_only_from_front(self):
        rob = RobTable()
        entries = push_reads(rob, [1, 2, 3])
        entries[1].state = EntryState.SERVED  # middle done first
        assert rob.retire() == []  # head not served yet
        entries[0].state = EntryState.SERVED
        retired = rob.retire()
        assert [e.addr for e in retired] == [1, 2]
        entries[2].state = EntryState.SERVED
        assert [e.addr for e in rob.retire()] == [3]

    def test_counters(self):
        rob = RobTable()
        entries = push_reads(rob, [1, 2])
        assert rob.total_submitted == 2
        for entry in entries:
            entry.state = EntryState.SERVED
        rob.retire()
        assert rob.total_retired == 2
        assert not rob.has_work()


class TestStates:
    def test_unserved_count(self):
        rob = RobTable()
        entries = push_reads(rob, [1, 2, 3])
        entries[0].state = EntryState.SERVED
        assert rob.unserved == 2

    def test_demote_ready(self):
        rob = RobTable()
        entries = push_reads(rob, [1, 2, 3])
        entries[0].state = EntryState.READY
        entries[1].state = EntryState.SERVED
        demoted = rob.demote_ready()
        assert demoted == 1
        assert entries[0].state is EntryState.PENDING
        assert entries[1].state is EntryState.SERVED

    def test_latency_cycles(self):
        rob = RobTable()
        entry = rob.push(Request.read(1), cycle=10)
        assert entry.latency_cycles == -1
        entry.served_cycle = 15
        assert entry.latency_cycles == 5
