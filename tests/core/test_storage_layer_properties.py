"""Property-based invariants of the storage layer and cache tree.

These are the conservation laws the protocol's correctness rests on:
no block is ever lost or duplicated by any interleaving of fetches,
dummy loads, evictions and (full or partial) shuffles.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.cache_tree import CacheTree
from repro.core.storage_layer import PermutedStorage
from repro.crypto.ctr import StreamCipher
from repro.crypto.random import DeterministicRandom
from repro.oram.base import BlockCodec, OpKind, initial_payload
from repro.shuffle import get_shuffle
from repro.storage.backend import BlockStore
from repro.storage.device import ddr4_2133, hdd_paper

N = 49  # 7 partitions of 7


def build_layer(ratio: int):
    codec = BlockCodec(16, StreamCipher(b"prop-key"))
    storage = BlockStore(
        name="st", tier="storage", slots=4 * N + 64, slot_bytes=codec.slot_bytes,
        device=hdd_paper(), modeled_slot_bytes=1024,
    )
    memory = BlockStore(
        name="mem", tier="memory", slots=8, slot_bytes=codec.slot_bytes,
        device=ddr4_2133(), modeled_slot_bytes=1024,
    )
    layer = PermutedStorage(
        n_blocks=N, codec=codec, storage_store=storage, memory_store=memory,
        rng=DeterministicRandom(5), shuffle=get_shuffle("cache"),
        shuffle_period_ratio=ratio, period_capacity=16,
    )
    return layer, codec


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    fetches=st.lists(st.integers(min_value=0, max_value=N - 1), max_size=12, unique=True),
    dummies=st.integers(min_value=0, max_value=8),
    ratio=st.sampled_from([1, 2, 4]),
    periods=st.integers(min_value=1, max_value=3),
)
def test_blocks_conserved_through_shuffles(fetches, dummies, ratio, periods):
    """fetch* + dummy* + shuffle, repeated: every block survives, once."""
    layer, codec = build_layer(ratio)
    for period in range(periods):
        in_memory: dict[int, bytes] = {}
        for addr in fetches:
            if not layer.is_in_memory(addr):
                payload, _ = layer.fetch(addr)
                in_memory[addr] = payload
        for _ in range(dummies):
            addr, payload, _ = layer.dummy_fetch()
            if addr is not None:
                in_memory[addr] = payload
        layer.shuffle_into(list(in_memory.items()), period_index=period)
        layer.end_period()
        # Conservation: all N blocks resident again, at distinct slots.
        assert layer.resident_blocks() == N
        slots = [layer.location[a] for a in range(N)]
        assert len(set(slots)) == N
    # Payload integrity after all the churn.
    probe = fetches[0] if fetches else 0
    payload, _ = layer.fetch(probe)
    assert payload == codec.pad(initial_payload(probe))


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.sampled_from(["insert", "read", "write", "dummy"]),
        ),
        max_size=25,
    )
)
def test_cache_tree_is_a_consistent_map(ops):
    """Arbitrary insert/access/dummy interleavings behave like a dict."""
    codec = BlockCodec(16, StreamCipher(b"tree-key"))
    store = BlockStore(
        name="mem", tier="memory", slots=256, slot_bytes=codec.slot_bytes,
        device=ddr4_2133(), modeled_slot_bytes=1024,
    )
    cache = CacheTree(
        mem_blocks_budget=256, bucket_size=4, codec=codec, memory_store=store,
        rng=DeterministicRandom(7), shuffle=get_shuffle("cache"),
    )
    oracle: dict[int, bytes] = {}
    for addr, kind in ops:
        if kind == "insert" and addr not in oracle:
            if cache.real_blocks < cache.period_capacity:
                payload = codec.pad(b"v%d" % addr)
                cache.insert(addr, payload)
                oracle[addr] = payload
        elif kind == "read" and addr in oracle:
            payload, _ = cache.access(OpKind.READ, addr, None)
            assert payload == oracle[addr]
        elif kind == "write" and addr in oracle:
            payload = codec.pad(b"w%d" % addr)
            cache.access(OpKind.WRITE, addr, payload)
            oracle[addr] = payload
        elif kind == "dummy":
            cache.dummy_access()
    # Eviction returns exactly the oracle's content.
    blocks, _, _ = cache.evict_all()
    assert dict(blocks) == oracle


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32))
def test_full_shuffle_produces_fresh_uniformish_layout(seed):
    """After a shuffle, slot assignments change for most blocks."""
    layer, _ = build_layer(ratio=1)
    before = list(layer.location)
    layer.shuffle_into([], period_index=0)
    layer.end_period()
    after = list(layer.location)
    moved = sum(1 for a, b in zip(before, after) if a != b)
    # A uniform re-permutation within partitions fixes a block with
    # probability ~1/partition_size; most blocks must move.
    assert moved > N // 2
