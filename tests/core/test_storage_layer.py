"""Permuted storage layer tests: fetch, dummies, shuffles, read-once."""

import pytest

from repro.core.storage_layer import IN_MEMORY, PermutedStorage
from repro.crypto.ctr import StreamCipher
from repro.crypto.random import DeterministicRandom
from repro.oram.base import BlockCodec, CapacityError, initial_payload
from repro.shuffle import get_shuffle
from repro.storage.backend import BlockStore
from repro.storage.device import ddr4_2133, hdd_paper


def make_layer(n_blocks=100, ratio=1, period_capacity=32):
    codec = BlockCodec(16, StreamCipher(b"layer-key"))
    # Generous store so any layout fits.
    storage = BlockStore(
        name="st",
        tier="storage",
        slots=4 * n_blocks + 64,
        slot_bytes=codec.slot_bytes,
        device=hdd_paper(),
        modeled_slot_bytes=1024,
    )
    memory = BlockStore(
        name="mem",
        tier="memory",
        slots=8,
        slot_bytes=codec.slot_bytes,
        device=ddr4_2133(),
        modeled_slot_bytes=1024,
    )
    layer = PermutedStorage(
        n_blocks=n_blocks,
        codec=codec,
        storage_store=storage,
        memory_store=memory,
        rng=DeterministicRandom(31),
        shuffle=get_shuffle("cache"),
        shuffle_period_ratio=ratio,
        period_capacity=period_capacity,
    )
    return layer, codec


class TestLayout:
    def test_partition_geometry(self):
        layer, _ = make_layer(n_blocks=100)
        assert layer.partition_count == 10
        assert layer.partition_size == 10
        assert layer.total_slots == 100

    def test_non_square_n(self):
        layer, _ = make_layer(n_blocks=90)
        # isqrt(90)=9 partitions of ceil(90/9)=10 slots.
        assert layer.partition_count == 9
        assert layer.partition_size == 10
        assert layer.total_slots == 90

    def test_every_block_located(self):
        layer, _ = make_layer()
        assert layer.resident_blocks() == 100
        slots = {layer.location[addr] for addr in range(100)}
        assert len(slots) == 100


class TestFetch:
    def test_fetch_returns_payload(self):
        layer, codec = make_layer()
        payload, times = layer.fetch(17)
        assert payload == codec.pad(initial_payload(17))
        assert times.io_us > 0

    def test_fetch_moves_to_memory(self):
        layer, _ = make_layer()
        layer.fetch(17)
        assert layer.is_in_memory(17)
        with pytest.raises(CapacityError):
            layer.fetch(17)

    def test_fetch_is_one_random_read(self):
        layer, _ = make_layer()
        before = layer.storage.snapshot()
        layer.fetch(3)
        delta = layer.storage.snapshot().delta(before)
        assert delta.reads == 1
        assert delta.busy_us == pytest.approx(
            layer.storage.device.access_us(1024), rel=0.01
        )


class TestDummyFetch:
    def test_dummy_fetch_prefetches_live_blocks(self):
        layer, _ = make_layer(n_blocks=16)
        found = set()
        for _ in range(16):
            addr, payload, _ = layer.dummy_fetch()
            if addr is not None:
                assert payload is not None
                assert layer.is_in_memory(addr)
                found.add(addr)
        # All slots are live initially, so every dummy fetch prefetches.
        assert len(found) == 16

    def test_read_once_within_period(self):
        layer, _ = make_layer(n_blocks=25)
        seen = set()
        for _ in range(25):
            before = layer.storage.snapshot()
            layer.dummy_fetch()
            # One single-slot read per dummy fetch...
            assert layer.storage.snapshot().delta(before).reads == 1
        # ...and the trace-free invariant: internal consumed flags say all
        # 25 slots were touched exactly once.
        assert sum(layer.consumed) == 25

    def test_exhausted_pool_falls_back_safely(self):
        layer, _ = make_layer(n_blocks=4)
        for _ in range(4):
            layer.dummy_fetch()
        assert layer.dummy_pool_exhausted == 0
        addr, payload, times = layer.dummy_fetch()
        assert addr is None and payload is None
        assert times.io_us > 0  # the cycle shape still sees one load
        assert layer.dummy_pool_exhausted == 1
        layer.dummy_fetch()
        assert layer.dummy_pool_exhausted == 2

    def test_exhausted_pool_surfaces_in_horam_metrics(self):
        # Idle cycles with an empty dummy pool (possible under partial
        # shuffle in tiny configurations) must be counted in the metrics,
        # not silently re-read slot 0.
        from repro.core.horam import build_horam

        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=3)
        oram.storage._unread.clear()
        oram.storage._unread_pos.clear()
        oram.step()  # no queued work: the cycle's load is a dummy fetch
        oram.step()
        assert oram.storage.dummy_pool_exhausted == 2
        assert oram.metrics.extra["dummy_pool_exhausted"] == 2


class TestFullShuffle:
    def test_shuffle_restores_evicted_blocks(self):
        layer, codec = make_layer(n_blocks=64)
        evicted = []
        for addr in (1, 5, 9):
            payload, _ = layer.fetch(addr)
            evicted.append((addr, payload))
        stats = layer.shuffle_into(evicted, period_index=0)
        layer.end_period()
        assert stats.partitions_shuffled == layer.partition_count
        assert layer.resident_blocks() == 64
        # Blocks are fetchable again and carry their payloads.
        payload, _ = layer.fetch(5)
        assert payload == codec.pad(initial_payload(5))

    def test_shuffle_changes_slots(self):
        layer, _ = make_layer(n_blocks=64)
        before = list(layer.location)
        payload, _ = layer.fetch(0)
        layer.shuffle_into([(0, payload)], period_index=0)
        layer.end_period()
        after = list(layer.location)
        changed = sum(1 for a, b in zip(before, after) if a != b)
        assert changed > 32  # a re-permutation, not a patch

    def test_shuffle_resets_consumed(self):
        layer, _ = make_layer(n_blocks=36)
        for _ in range(10):
            layer.dummy_fetch()
        evicted = [
            (addr, layer.codec.pad(initial_payload(addr)))
            for addr in range(36)
            if layer.is_in_memory(addr)
        ]
        layer.shuffle_into(evicted, period_index=0)
        layer.end_period()
        assert sum(layer.consumed) == 0

    def test_shuffle_io_is_sequential_runs(self):
        layer, _ = make_layer(n_blocks=100)
        before = layer.storage.snapshot()
        layer.shuffle_into([], period_index=0)
        delta = layer.storage.snapshot().delta(before)
        # 10 partitions, each one read run + one write run of 10 slots.
        expected = 10 * (
            layer.storage.device.run_us(10 * 1024, write=False)
            + layer.storage.device.run_us(10 * 1024, write=True)
        )
        assert delta.busy_us == pytest.approx(expected, rel=0.01)


class TestIncrementalUnreadPool:
    """The cached per-partition pool must always equal a full slot scan."""

    @staticmethod
    def brute_force_unread(layer):
        return [
            slot
            for slot in range(layer.total_slots)
            if layer._occupied[slot] and not layer.consumed[slot]
        ]

    def test_pool_matches_full_scan_across_periods(self):
        layer, _ = make_layer(n_blocks=64)
        assert layer._unread == self.brute_force_unread(layer)
        evicted = []
        for addr in (2, 11, 40):
            payload, _ = layer.fetch(addr)
            evicted.append((addr, payload))
        for _ in range(5):
            layer.dummy_fetch()
        layer.shuffle_into(evicted, period_index=0)
        layer.end_period()
        assert layer._unread == self.brute_force_unread(layer)

    def test_pool_matches_full_scan_with_overflow_appends(self):
        layer, _ = make_layer(n_blocks=100, ratio=4, period_capacity=16)
        for period in range(4):
            evicted = []
            for addr in range(period * 10, period * 10 + 6):
                if layer.is_in_memory(addr):
                    continue
                payload, _ = layer.fetch(addr)
                evicted.append((addr, payload))
            layer.dummy_fetch()
            layer.shuffle_into(evicted, period_index=period)
            layer.end_period()
            assert layer._unread == self.brute_force_unread(layer)


class TestPartialShuffle:
    def test_only_subset_shuffled(self):
        layer, _ = make_layer(n_blocks=100, ratio=4)
        stats = layer.shuffle_into([], period_index=0)
        assert stats.partitions_shuffled == pytest.approx(
            layer.partition_count / 4, abs=1
        )

    def test_leftover_evicted_appended(self):
        layer, _ = make_layer(n_blocks=100, ratio=4, period_capacity=16)
        evicted = []
        for addr in range(12):
            payload, _ = layer.fetch(addr)
            evicted.append((addr, payload))
        stats = layer.shuffle_into(evicted, period_index=0)
        layer.end_period()
        assert stats.blocks_appended > 0
        assert layer.resident_blocks() == 100

    def test_appended_blocks_fetchable(self):
        layer, codec = make_layer(n_blocks=100, ratio=4, period_capacity=16)
        payload, _ = layer.fetch(50)
        layer.shuffle_into([(50, payload)], period_index=0)
        layer.end_period()
        got, _ = layer.fetch(50)
        assert got == codec.pad(initial_payload(50))

    def test_rotation_covers_all_partitions(self):
        layer, _ = make_layer(n_blocks=100, ratio=4)
        shuffled = 0
        for period in range(4):
            stats = layer.shuffle_into([], period_index=period)
            layer.end_period()
            shuffled += stats.partitions_shuffled
        assert shuffled == layer.partition_count
