"""The self-healing fleet: supervision, heartbeats, auto-recovery.

Crash storms are diffed against an uninterrupted, unsupervised twin --
recovery is *value-level* (same bytes for the same requests), and the
recovery trace must be a pure function of (seed, fault plan).
"""

from __future__ import annotations

import shutil
import tempfile

import pytest

from repro.core.sharding import ShardUnavailableError, build_sharded_horam
from repro.core.supervisor import FleetSupervisor, SupervisorConfig
from repro.crypto.random import DeterministicRandom
from repro.storage.faults import FaultPlan
from repro.workload.generators import hotspot

N_BLOCKS = 512
MEM_BLOCKS = 128


def _workload(count, seed=31):
    rng = DeterministicRandom(seed)
    return list(hotspot(N_BLOCKS, count, rng, hot_blocks=48))


def _drive(protocol, requests):
    served = []
    for request in requests:
        entry = protocol.submit(request)
        protocol.drain()
        served.append(entry.result)
    return served


def _twin_results(requests, n_shards):
    twin = build_sharded_horam(
        n_blocks=N_BLOCKS, mem_tree_blocks=MEM_BLOCKS, n_shards=n_shards, seed=0
    )
    try:
        return _drive(twin, requests)
    finally:
        twin.close()


@pytest.fixture
def ckpt_dir():
    path = tempfile.mkdtemp(prefix="horam-sup-test-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def _supervised(ckpt_dir, n_shards=4, executor="serial", **config):
    fleet = build_sharded_horam(
        n_blocks=N_BLOCKS,
        mem_tree_blocks=MEM_BLOCKS,
        n_shards=n_shards,
        seed=0,
        executor=executor,
    )
    defaults = dict(checkpoint_every_ops=24, max_restarts=2, keep_checkpoints=3)
    defaults.update(config)
    return FleetSupervisor(fleet, ckpt_dir, SupervisorConfig(**defaults))


class TestSerialStorm:
    def test_storm_recovers_and_matches_twin(self, ckpt_dir):
        requests = _workload(140)
        twin = _twin_results(requests, 4)
        supervisor = _supervised(ckpt_dir)
        try:
            supervisor.install_fault_plan(
                FaultPlan(seed=0, crash_schedule=[40, 90], crash_op_kind="any")
            )
            results = _drive(supervisor, requests)
            report = supervisor.recovery_report()
            assert report["crashes_detected"] == 2
            assert report["restores"] == 2
            assert report["fences"] == 0
            assert all(i["outcome"] == "restored" for i in report["incidents"])
            assert not supervisor.fenced
            assert results == twin
        finally:
            supervisor.close()

    def test_recovery_trace_is_deterministic(self, ckpt_dir):
        requests = _workload(120)
        traces, payloads = [], []
        for run in range(2):
            run_dir = tempfile.mkdtemp(prefix="horam-sup-det-")
            supervisor = _supervised(run_dir)
            try:
                supervisor.install_fault_plan(
                    FaultPlan(seed=0, crash_schedule=[35], crash_op_kind="any")
                )
                payloads.append(_drive(supervisor, requests))
                traces.append(supervisor.event_trace())
            finally:
                supervisor.close()
                shutil.rmtree(run_dir, ignore_errors=True)
        assert traces[0] == traces[1]
        assert payloads[0] == payloads[1]
        assert any(kind == "crash_detected" for kind, _, _ in traces[0])

    def test_supervision_counters_surface_in_metrics(self, ckpt_dir):
        supervisor = _supervised(ckpt_dir)
        try:
            supervisor.install_fault_plan(
                FaultPlan(seed=0, crash_schedule=[20], crash_op_kind="any")
            )
            _drive(supervisor, _workload(60))
            extra = supervisor.metrics.extra
            assert extra["supervisor_crashes"] == 1
            assert extra["supervisor_restores"] == 1
            assert extra["supervisor_fenced"] == 0
            assert extra["supervisor_checkpoints"] >= 4  # one initial per shard
            assert extra["fault_crashes"] == 1
        finally:
            supervisor.close()


class TestFencing:
    def test_exhausted_retries_fence_the_shard(self, ckpt_dir):
        requests = _workload(90)
        supervisor = _supervised(ckpt_dir, max_restarts=0)
        try:
            supervisor.install_fault_plan(
                FaultPlan(seed=0, crash_schedule=[30], crash_op_kind="any")
            )
            served = failed = 0
            for request in requests:
                try:
                    entry = supervisor.submit(request)
                except ShardUnavailableError:
                    failed += 1
                    continue
                supervisor.drain()
                if entry.error is not None:
                    assert isinstance(entry.error, ShardUnavailableError)
                    failed += 1
                else:
                    served += 1
            kinds = [kind for kind, _, _ in supervisor.event_trace()]
            assert "gave_up" in kinds and "fenced" in kinds
            assert "restored" not in kinds
            assert len(supervisor.fenced) == 1
            assert served > 0  # survivors kept serving
            assert failed > 0  # the fenced stripe failed fast
            assert supervisor.metrics.extra["supervisor_fenced"] == 1
        finally:
            supervisor.close()

    def test_fenced_stripe_raises_typed_error_with_context(self, ckpt_dir):
        supervisor = _supervised(ckpt_dir, max_restarts=0)
        try:
            supervisor.install_fault_plan(
                FaultPlan(seed=0, crash_schedule=[25], crash_op_kind="any")
            )
            _drive_tolerant(supervisor, _workload(80))
            (fenced_shard,) = supervisor.fenced
            addr = next(
                a for a in range(N_BLOCKS)
                if supervisor.fleet.shard_of(a) == fenced_shard
            )
            with pytest.raises(ShardUnavailableError) as excinfo:
                supervisor.read(addr)
            assert excinfo.value.shard_index == fenced_shard
        finally:
            supervisor.close()

    def test_survivors_serve_correct_values_after_fence(self, ckpt_dir):
        requests = _workload(100)
        twin = _twin_results(requests, 4)
        supervisor = _supervised(ckpt_dir, max_restarts=0)
        try:
            supervisor.install_fault_plan(
                FaultPlan(seed=0, crash_schedule=[30], crash_op_kind="any")
            )
            results = _drive_tolerant(supervisor, requests)
            (fenced_shard,) = supervisor.fenced
            checked = 0
            for request, mine, twin_value in zip(requests, results, twin):
                if supervisor.fleet.shard_of(request.addr) == fenced_shard:
                    continue
                assert mine == twin_value
                checked += 1
            assert checked > 0
        finally:
            supervisor.close()


def _drive_tolerant(supervisor, requests):
    """Drive accepting fenced fail-fasts; returns result-or-None per request."""
    results = []
    for request in requests:
        try:
            entry = supervisor.submit(request)
        except ShardUnavailableError:
            results.append(None)
            continue
        supervisor.drain()
        results.append(entry.result if entry.error is None else None)
    return results


class TestCheckpointFallback:
    def test_restore_falls_back_past_corrupted_newest(self, ckpt_dir):
        requests = _workload(140)
        twin = _twin_results(requests, 4)
        supervisor = _supervised(ckpt_dir, checkpoint_every_ops=12)
        try:
            results = _drive(supervisor, requests[:100])
            for store in supervisor.stores:
                assert len(store.paths()) >= 2
                manifest = store.paths()[-1] / "checkpoint.json"
                manifest.write_text("{ torn garbage")
            supervisor.install_fault_plan(
                FaultPlan(seed=0, crash_schedule=[5], crash_op_kind="any")
            )
            results += _drive(supervisor, requests[100:])
            report = supervisor.recovery_report()
            assert report["restores"] == report["crashes_detected"] == 1
            assert not supervisor.fenced
            assert results == twin
        finally:
            supervisor.close()

    def test_no_valid_checkpoint_fences_after_retries(self, ckpt_dir):
        requests = _workload(90)
        supervisor = _supervised(ckpt_dir, checkpoint_every_ops=0, max_restarts=2)
        try:
            _drive(supervisor, requests[:40])
            for store in supervisor.stores:
                for path in store.paths():
                    (path / "checkpoint.json").write_text("not json")
            supervisor.install_fault_plan(
                FaultPlan(seed=0, crash_schedule=[5], crash_op_kind="any")
            )
            _drive_tolerant(supervisor, requests[40:])
            kinds = [kind for kind, _, _ in supervisor.event_trace()]
            assert kinds.count("restore_failed") == 2  # both attempts
            assert "fenced" in kinds
            assert len(supervisor.fenced) == 1
        finally:
            supervisor.close()


class TestCheckpointCadence:
    def test_cadence_writes_and_rotates_on_disk(self, ckpt_dir):
        supervisor = _supervised(
            ckpt_dir, checkpoint_every_ops=8, keep_checkpoints=2
        )
        try:
            _drive(supervisor, _workload(120))
            report = supervisor.recovery_report()
            assert report["checkpoints"] > 4  # beyond the initial per-shard ones
            for store in supervisor.stores:
                paths = store.paths()
                assert 1 <= len(paths) <= 2
                # rotation kept the newest sequence numbers
                seqs = [int(p.name[5:]) for p in paths]
                assert seqs == sorted(seqs)
                assert store.load_latest_valid()[1] == paths[-1]
        finally:
            supervisor.close()

    def test_zero_cadence_keeps_initial_checkpoint_only(self, ckpt_dir):
        supervisor = _supervised(ckpt_dir, checkpoint_every_ops=0)
        try:
            _drive(supervisor, _workload(60))
            assert supervisor.recovery_report()["checkpoints"] == 4
            for store in supervisor.stores:
                assert len(store.paths()) == 1
        finally:
            supervisor.close()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(checkpoint_every_ops=-1)
        with pytest.raises(ValueError):
            SupervisorConfig(keep_checkpoints=0)
        with pytest.raises(ValueError):
            SupervisorConfig(max_restarts=-1)
        with pytest.raises(ValueError):
            SupervisorConfig(backoff_factor=0.5)


class TestSerialHealth:
    def test_heartbeats_report_all_shards(self, ckpt_dir):
        supervisor = _supervised(ckpt_dir)
        try:
            _drive(supervisor, _workload(20))
            beats = supervisor.check_health()
            assert sorted(beats) == [0, 1, 2, 3]
            assert all(now >= 0 for now in beats.values())
        finally:
            supervisor.close()


class TestParallelSupervision:
    def test_parallel_storm_recovers_and_matches_twin(self, ckpt_dir):
        requests = _workload(70)
        twin = _twin_results(requests, 2)
        supervisor = _supervised(ckpt_dir, n_shards=2, executor="parallel")
        try:
            # one injector per worker: the schedule fires on each shard
            supervisor.install_fault_plan(
                FaultPlan(seed=0, crash_schedule=[30], crash_op_kind="any")
            )
            results = _drive(supervisor, requests)
            report = supervisor.recovery_report()
            assert report["crashes_detected"] >= 1
            assert report["restores"] == report["crashes_detected"]
            assert report["fences"] == 0
            assert results == twin
        finally:
            supervisor.close()

    def test_parallel_hang_detected_by_heartbeat_timeout(self, ckpt_dir):
        requests = _workload(50)
        twin = _twin_results(requests, 2)
        supervisor = _supervised(
            ckpt_dir, n_shards=2, executor="parallel", heartbeat_timeout_s=0.75
        )
        try:
            supervisor.install_fault_plan(
                FaultPlan(seed=0, hang_at_op=25, hang_wall_s=3.0)
            )
            results = _drive(supervisor, requests)
            report = supervisor.recovery_report()
            assert report["crashes_detected"] >= 1
            assert all(i["kind"] == "hung" for i in report["incidents"])
            assert report["fences"] == 0
            assert results == twin
        finally:
            supervisor.close()
