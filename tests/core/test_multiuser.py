"""Multi-user front end tests (Section 5.3.2)."""

import pytest

from repro.core.horam import build_horam
from repro.core.multiuser import AccessDenied, MultiUserFrontEnd
from repro.oram.base import Request, initial_payload


@pytest.fixture
def front():
    oram = build_horam(n_blocks=512, mem_tree_blocks=128, seed=21)
    front = MultiUserFrontEnd(oram)
    front.register_user(0, allowed=range(0, 256))
    front.register_user(1, allowed=range(256, 512))
    return front


class TestRegistration:
    def test_duplicate_user_rejected(self, front):
        with pytest.raises(ValueError):
            front.register_user(0)

    def test_unknown_user_rejected(self, front):
        with pytest.raises(ValueError):
            front.submit(9, Request.read(1))

    def test_users_listed(self, front):
        assert front.users() == [0, 1]


class TestAccessControl:
    def test_acl_enforced(self, front):
        with pytest.raises(AccessDenied):
            front.submit(0, Request.read(300))
        with pytest.raises(AccessDenied):
            front.submit(1, Request.read(0))

    def test_allowed_requests_pass(self, front):
        front.submit(0, Request.read(10))
        front.submit(1, Request.read(300))
        retired = front.pump()
        assert len(retired) == 2


class TestServiceAndFairness:
    def test_all_requests_served_correct(self, front):
        oram = front.oram
        for i in range(30):
            front.submit(0, Request.read(i))
            front.submit(1, Request.read(256 + i))
        retired = front.pump()
        assert len(retired) == 60
        for entry in retired:
            assert entry.result == oram.codec.pad(initial_payload(entry.addr))

    def test_per_user_stats(self, front):
        for i in range(10):
            front.submit(0, Request.read(i))
        front.submit(1, Request.read(256))
        front.pump()
        assert front.stats(0).served == 10
        assert front.stats(1).served == 1
        assert front.stats(0).mean_latency_cycles >= 0

    def test_round_robin_interleaves(self, front):
        # With equal load, service order should alternate users rather
        # than serving user 0's whole queue first.
        for i in range(20):
            front.submit(0, Request.read(i))
        for i in range(20):
            front.submit(1, Request.read(256 + i))
        retired = front.pump()
        first_half_users = {e.request.user for e in retired[:10]}
        assert first_half_users == {0, 1}

    def test_write_isolation_between_users(self, front):
        front.submit(0, Request.write(5, b"user0-data"))
        front.submit(1, Request.read(256 + 5))
        retired = front.pump()
        user1_read = [e for e in retired if e.request.user == 1][0]
        assert user1_read.result == front.oram.codec.pad(initial_payload(261))

    def test_latency_balance(self, front):
        for i in range(25):
            front.submit(0, Request.read(i % 100))
            front.submit(1, Request.read(256 + (i % 100)))
        front.pump()
        lat0 = front.stats(0).mean_latency_cycles
        lat1 = front.stats(1).mean_latency_cycles
        assert lat0 > 0 and lat1 > 0
        assert max(lat0, lat1) / min(lat0, lat1) < 2.5
