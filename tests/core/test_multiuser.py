"""Multi-user front end tests (Section 5.3.2)."""

import pytest

from repro.core.horam import build_horam
from repro.core.multiuser import AccessDenied, MultiUserFrontEnd, UnknownUserError
from repro.oram.base import ORAMError, Request, initial_payload


@pytest.fixture
def front():
    oram = build_horam(n_blocks=512, mem_tree_blocks=128, seed=21)
    front = MultiUserFrontEnd(oram)
    front.register_user(0, allowed=range(0, 256))
    front.register_user(1, allowed=range(256, 512))
    return front


class TestRegistration:
    def test_duplicate_user_rejected(self, front):
        with pytest.raises(ValueError):
            front.register_user(0)

    def test_unknown_user_rejected(self, front):
        with pytest.raises(UnknownUserError):
            front.submit(9, Request.read(1))

    def test_unknown_user_error_is_typed_and_names_the_set(self, front):
        with pytest.raises(UnknownUserError) as exc_info:
            front.submit(9, Request.read(1))
        error = exc_info.value
        assert isinstance(error, ORAMError)
        assert error.user == 9
        assert error.registered == [0, 1]
        assert "9" in str(error) and "[0, 1]" in str(error)

    def test_unknown_user_stats_rejected(self, front):
        with pytest.raises(UnknownUserError) as exc_info:
            front.stats(7)
        assert exc_info.value.user == 7

    def test_users_listed(self, front):
        assert front.users() == [0, 1]


class TestAccessControl:
    def test_acl_enforced(self, front):
        with pytest.raises(AccessDenied):
            front.submit(0, Request.read(300))
        with pytest.raises(AccessDenied):
            front.submit(1, Request.read(0))

    def test_allowed_requests_pass(self, front):
        front.submit(0, Request.read(10))
        front.submit(1, Request.read(300))
        retired = front.pump()
        assert len(retired) == 2


class TestServiceAndFairness:
    def test_all_requests_served_correct(self, front):
        oram = front.oram
        for i in range(30):
            front.submit(0, Request.read(i))
            front.submit(1, Request.read(256 + i))
        retired = front.pump()
        assert len(retired) == 60
        for entry in retired:
            assert entry.result == oram.codec.pad(initial_payload(entry.addr))

    def test_per_user_stats(self, front):
        for i in range(10):
            front.submit(0, Request.read(i))
        front.submit(1, Request.read(256))
        front.pump()
        assert front.stats(0).served == 10
        assert front.stats(1).served == 1
        assert front.stats(0).mean_latency_cycles >= 0

    def test_round_robin_interleaves(self, front):
        # With equal load, service order should alternate users rather
        # than serving user 0's whole queue first.
        for i in range(20):
            front.submit(0, Request.read(i))
        for i in range(20):
            front.submit(1, Request.read(256 + i))
        retired = front.pump()
        first_half_users = {e.request.user for e in retired[:10]}
        assert first_half_users == {0, 1}

    def test_write_isolation_between_users(self, front):
        front.submit(0, Request.write(5, b"user0-data"))
        front.submit(1, Request.read(256 + 5))
        retired = front.pump()
        user1_read = [e for e in retired if e.request.user == 1][0]
        assert user1_read.result == front.oram.codec.pad(initial_payload(261))

    def test_submit_does_not_mutate_caller_request(self, front):
        template = Request.read(10)
        front.submit(0, template)
        assert template.user is None  # untouched default, not re-tagged
        # The same template can be reused for another user without
        # silently re-tagging the first queued entry.
        other = Request.read(300)
        front.submit(1, other)
        retired = front.pump()
        users = sorted(e.request.user for e in retired)
        assert users == [0, 1]

    def test_shared_template_across_users_keeps_both_tags(self, front):
        # One request object templated to both users: each queued entry
        # must keep its own tag (the old in-place tagging re-tagged the
        # earlier entry).
        front.register_user(2)  # unrestricted
        template = Request.read(42)
        front.submit(0, template)
        front.submit(2, template)
        retired = front.pump()
        assert sorted(e.request.user for e in retired) == [0, 2]
        assert front.stats(0).served == 1
        assert front.stats(2).served == 1

    def test_unregistered_and_untagged_retirees_bucketed(self, front):
        # Requests submitted directly to the back end (before/around the
        # front end) retire with an unknown or absent user tag; pump must
        # bucket them instead of crashing stats accounting.
        front.oram.submit(Request.read(40, user=99))  # never registered
        front.oram.submit(Request.read(41))  # untagged (user is None)
        front.submit(0, Request.read(10))
        retired = front.pump()
        assert len(retired) == 3
        assert front.unattributed_retired == 2
        # The untagged direct submission must NOT be attributed to a
        # registered user (0 is registered here).
        assert front.stats(0).served == 1

    def test_unserved_latency_not_counted_in_mean(self, front):
        front.submit(0, Request.read(1))
        front.submit(0, Request.read(2))
        retired = front.pump()
        # Sabotage one entry's latency stamp and re-account it: the mean
        # must ignore the invalid sample rather than dilute it with zeros.
        broken = retired[0]
        broken.served_cycle = -1
        stats_before = front.stats(0)
        samples_before = stats_before.latency_samples
        total_before = stats_before.total_latency_cycles
        front._account([broken])
        stats = front.stats(0)
        assert stats.served == 3  # still counted as served
        assert stats.latency_samples == samples_before  # but not in the mean
        assert stats.total_latency_cycles == total_before

    def test_latency_balance(self, front):
        for i in range(25):
            front.submit(0, Request.read(i % 100))
            front.submit(1, Request.read(256 + (i % 100)))
        front.pump()
        lat0 = front.stats(0).mean_latency_cycles
        lat1 = front.stats(1).mean_latency_cycles
        assert lat0 > 0 and lat1 > 0
        assert max(lat0, lat1) / min(lat0, lat1) < 2.5
