"""ParallelExecutor.close() hardening: idempotent, safe mid-drain, safe
after failures, never leaks worker processes."""

from __future__ import annotations

import pytest

from repro.core.executor import ShardCrashed
from repro.core.sharding import build_sharded_horam
from repro.crypto.random import DeterministicRandom
from repro.storage.faults import FaultPlan
from repro.workload.generators import hotspot


def _fleet(n_shards=2, executor="parallel"):
    return build_sharded_horam(
        n_blocks=256, mem_tree_blocks=64, n_shards=n_shards, seed=0,
        executor=executor,
    )


def _requests(count, seed=11):
    rng = DeterministicRandom(seed)
    return list(hotspot(256, count, rng, hot_blocks=32))


def _worker_pids(executor):
    return [
        pid
        for pool in executor._pools
        for pid in list(getattr(pool, "_processes", {}) or {})
    ]


def _alive(pids):
    import os

    alive = []
    for pid in pids:
        try:
            os.kill(pid, 0)
        except OSError:
            continue
        alive.append(pid)
    return alive


class TestIdempotentClose:
    def test_double_close_is_a_noop(self):
        fleet = _fleet()
        fleet.close()
        fleet.close()  # must not raise or hang

    def test_close_then_context_exit(self):
        fleet = _fleet()
        with fleet:
            fleet.close()
        fleet.close()

    def test_serial_close_is_idempotent_too(self):
        fleet = _fleet(executor="serial")
        fleet.close()
        fleet.close()

    def test_use_after_close_raises(self):
        fleet = _fleet()
        fleet.close()
        with pytest.raises(RuntimeError, match="closed"):
            fleet.submit(_requests(1)[0])


class TestCloseDuringInflightDrain:
    def test_close_with_queued_undrained_work(self):
        fleet = _fleet()
        pids = _worker_pids(fleet.executor)
        for request in _requests(8):
            fleet.submit(request)
        fleet.close()  # queued batches are cancelled, not drained
        assert not _alive(pids)

    def test_close_mid_drain(self):
        fleet = _fleet()
        pids = _worker_pids(fleet.executor)
        for request in _requests(8):
            fleet.submit(request)
        while fleet.has_work():
            fleet.step()
            break  # leave retirements unharvested
        fleet.close()
        fleet.close()
        assert not _alive(pids)

    def test_close_after_monitored_failure(self):
        """A crash surfaced in monitored mode must not wedge close()."""
        fleet = _fleet()
        fleet.executor.monitored = True
        pids = _worker_pids(fleet.executor)
        fleet.executor.install_fault_plan(
            FaultPlan(seed=0, crash_schedule=[5], crash_op_kind="any")
        )
        with pytest.raises(ShardCrashed):
            for request in _requests(30):
                fleet.submit(request)
                while fleet.has_work():
                    fleet.step()
                fleet.retire()
        fleet.close()
        fleet.close()
        assert not _alive(pids)

    def test_close_after_fence(self):
        fleet = _fleet()
        fleet.executor.monitored = True
        pids = _worker_pids(fleet.executor)
        fleet.executor.fence_shard(0)
        fleet.close()  # fenced pool already shut; must skip, not raise
        assert not _alive(pids)


class TestSupervisedClose:
    def test_supervisor_close_is_idempotent(self, tmp_path):
        from repro.core.supervisor import FleetSupervisor, SupervisorConfig

        supervisor = FleetSupervisor(
            _fleet(), str(tmp_path), SupervisorConfig(checkpoint_every_ops=0)
        )
        for request in _requests(6):
            supervisor.submit(request)
        supervisor.drain()
        supervisor.close()
        supervisor.close()
