"""Hypothesis properties for the durability subsystem.

Two laws:

* **checkpoint round-trip** -- ``restore(snapshot(s))`` is observationally
  equal to ``s``: driving the same request suffix through the original
  and the restored stack yields identical results, served logs, metrics
  and simulated clocks, across protocol x shard-width x executor;
* **backend bit-identity** -- a disk-backed store is bit-identical to an
  in-memory one under the same seed: same served results, same metrics,
  same final slot bytes.
"""

import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import restore_stack, snapshot_stack
from repro.core.horam import build_horam
from repro.core.sharding import build_sharded_horam
from repro.crypto.random import DeterministicRandom
from repro.oram.base import OpKind
from repro.oram.factory import build_baseline
from repro.workload.generators import hotspot

#: protocol x shard-width x executor combinations the round-trip law covers.
STACKS = [
    ("horam", {}),
    ("sharded", {"n_shards": 1, "executor": "serial"}),
    ("sharded", {"n_shards": 2, "executor": "serial"}),
    ("sharded", {"n_shards": 4, "executor": "serial"}),
    ("sharded", {"n_shards": 2, "executor": "parallel"}),
    ("sharded", {"n_shards": 2, "executor": "serial", "protocol": "succinct"}),
    ("sharded", {"n_shards": 2, "executor": "serial", "protocol": "bios"}),
    ("path", {}),
    ("plain", {}),
    ("sqrt", {}),
    ("partition", {}),
    ("succinct", {}),
    ("bios", {}),
]

#: baselines that take a memory budget (mirrors factory._NEEDS_MEMORY).
_MEMORY_BASELINES = ("path", "succinct", "bios")


def build(kind, options, seed):
    if kind == "horam":
        return build_horam(n_blocks=256, mem_tree_blocks=64, seed=seed)
    if kind == "sharded":
        return build_sharded_horam(
            n_blocks=256, mem_tree_blocks=64, seed=seed, **options
        )
    kwargs = {"memory_blocks": 32} if kind in _MEMORY_BASELINES else {}
    return build_baseline(kind, 128, seed=seed, **kwargs)


def drive(protocol, requests):
    results = []
    if hasattr(protocol, "submit"):
        for request in requests:
            entry = protocol.submit(request)
            protocol.drain()
            results.append(entry.result)
        return results
    for request in requests:
        if request.op is OpKind.READ:
            results.append(protocol.read(request.addr))
        else:
            protocol.write(request.addr, request.data)
            results.append(None)
    return results


def close(protocol):
    closer = getattr(protocol, "close", None)
    if closer is not None:
        closer()


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    stack=st.sampled_from(STACKS),
    seed=st.integers(min_value=0, max_value=2**16),
    prefix=st.integers(min_value=0, max_value=40),
    suffix=st.integers(min_value=1, max_value=40),
    workload_seed=st.integers(min_value=0, max_value=2**16),
    write_ratio=st.sampled_from([0.0, 0.3, 1.0]),
)
def test_checkpoint_round_trip_is_observationally_equal(
    stack, seed, prefix, suffix, workload_seed, write_ratio
):
    kind, options = stack
    n_blocks = 256 if kind in ("horam", "sharded") else 128
    rng = DeterministicRandom(workload_seed)
    requests = list(
        hotspot(n_blocks, prefix + suffix, rng, hot_blocks=16, write_ratio=write_ratio)
    )
    original = build(kind, options, seed)
    try:
        drive(original, requests[:prefix])
        restored = restore_stack(snapshot_stack(original))
        try:
            tail = requests[prefix:]
            got_original = drive(original, tail)
            got_restored = drive(restored, tail)
            assert got_restored == got_original
            assert list(getattr(restored, "served_log", [])) == list(
                getattr(original, "served_log", [])
            )
            assert restored.metrics.to_dict() == original.metrics.to_dict()
            assert (
                restored.hierarchy.clock.now_us == original.hierarchy.clock.now_us
            )
        finally:
            close(restored)
    finally:
        close(original)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    count=st.integers(min_value=1, max_value=80),
    workload_seed=st.integers(min_value=0, max_value=2**16),
    write_ratio=st.sampled_from([0.0, 0.3, 1.0]),
)
def test_disk_backed_store_is_bit_identical_to_memory(
    seed, count, workload_seed, write_ratio
):
    rng = DeterministicRandom(workload_seed)
    requests = list(hotspot(256, count, rng, hot_blocks=16, write_ratio=write_ratio))
    in_memory = build_horam(n_blocks=256, mem_tree_blocks=64, seed=seed)
    with tempfile.TemporaryDirectory(prefix="horam-prop-") as slab_dir:
        durable = build_horam(
            n_blocks=256,
            mem_tree_blocks=64,
            seed=seed,
            storage_backend="file",
            storage_path=f"{slab_dir}/prop.slab",
        )
        try:
            assert drive(in_memory, requests) == drive(durable, requests)
            assert in_memory.metrics.to_dict() == durable.metrics.to_dict()
            assert (
                in_memory.hierarchy.clock.now_us == durable.hierarchy.clock.now_us
            )
            assert (
                in_memory.hierarchy.storage.export_data()
                == durable.hierarchy.storage.export_data()
            )
        finally:
            durable.close()
