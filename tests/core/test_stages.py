"""Stage schedule tests."""

import pytest

from repro.core.stages import Stage, StageSchedule


class TestStage:
    def test_validation(self):
        with pytest.raises(ValueError):
            Stage(c=0, fraction=0.5)
        with pytest.raises(ValueError):
            Stage(c=1, fraction=0.0)


class TestSchedule:
    def test_paper_default_average(self):
        # Equation 5-1 with {1,3,5} / {0.2, 0.13, 0.67} gives 3.94.
        schedule = StageSchedule.paper_default()
        assert schedule.average_c() == pytest.approx(3.94, abs=0.01)

    def test_c_at_progress(self):
        schedule = StageSchedule.paper_default()
        assert schedule.c_at(0.0) == 1
        assert schedule.c_at(0.19) == 1
        assert schedule.c_at(0.21) == 3
        assert schedule.c_at(0.34) == 5
        assert schedule.c_at(0.99) == 5

    def test_progress_past_one_clamps(self):
        schedule = StageSchedule.paper_default()
        assert schedule.c_at(1.5) == 5

    def test_negative_progress_rejected(self):
        with pytest.raises(ValueError):
            StageSchedule.paper_default().c_at(-0.1)

    def test_fractions_normalized(self):
        schedule = StageSchedule([(2, 1.0), (4, 3.0)])
        assert schedule.average_c() == pytest.approx(0.25 * 2 + 0.75 * 4)
        assert schedule.c_at(0.2) == 2
        assert schedule.c_at(0.3) == 4

    def test_fixed(self):
        schedule = StageSchedule.fixed(7)
        assert schedule.c_at(0.0) == 7
        assert schedule.c_at(0.9) == 7
        assert schedule.average_c() == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StageSchedule([])

    def test_accepts_stage_objects(self):
        schedule = StageSchedule([Stage(2, 0.5), Stage(6, 0.5)])
        assert len(schedule) == 2
        assert [s.c for s in schedule] == [2, 6]
