"""Cache tree tests: dynamic membership, access, oblivious evict."""

import pytest

from repro.core.cache_tree import CacheTree
from repro.crypto.ctr import StreamCipher
from repro.crypto.random import DeterministicRandom
from repro.oram.base import BlockCodec, CapacityError, OpKind
from repro.shuffle import get_shuffle
from repro.storage.backend import BlockStore
from repro.storage.device import ddr4_2133


def make_cache(budget=128, stash_limit=None):
    codec = BlockCodec(16, StreamCipher(b"cache-key"))
    store = BlockStore(
        name="mem",
        tier="memory",
        slots=budget,
        slot_bytes=codec.slot_bytes,
        device=ddr4_2133(),
        modeled_slot_bytes=1024,
    )
    return CacheTree(
        mem_blocks_budget=budget,
        bucket_size=4,
        codec=codec,
        memory_store=store,
        rng=DeterministicRandom(77),
        shuffle=get_shuffle("cache"),
        stash_limit=stash_limit,
    )


class TestMembership:
    def test_starts_empty(self):
        cache = make_cache()
        assert cache.real_blocks == 0
        assert not cache.contains(0)

    def test_insert_makes_resident(self):
        cache = make_cache()
        cache.insert(5, b"\x00" * 16)
        assert cache.contains(5)
        assert cache.real_blocks == 1

    def test_double_insert_rejected(self):
        cache = make_cache()
        cache.insert(5, b"\x00" * 16)
        with pytest.raises(CapacityError):
            cache.insert(5, b"\x00" * 16)

    def test_capacity_enforced(self):
        cache = make_cache(budget=32)  # tree slots 28 -> capacity 14
        for addr in range(cache.period_capacity):
            cache.insert(addr, b"\x00" * 16)
        with pytest.raises(CapacityError):
            cache.insert(999, b"\x00" * 16)

    def test_period_capacity_is_half_slots(self):
        cache = make_cache(budget=128)
        assert cache.period_capacity == cache.slot_capacity // 2


class TestAccess:
    def test_read_after_insert(self):
        cache = make_cache()
        cache.insert(9, b"payload-nine!!!!")
        payload, times = cache.access(OpKind.READ, 9, None)
        assert payload == b"payload-nine!!!!"
        assert times.mem_us > 0
        assert times.io_us == 0

    def test_write_updates(self):
        cache = make_cache()
        cache.insert(9, b"\x00" * 16)
        cache.access(OpKind.WRITE, 9, b"updated")
        payload, _ = cache.access(OpKind.READ, 9, None)
        assert payload.rstrip(b"\x00") == b"updated"

    def test_access_nonresident_rejected(self):
        cache = make_cache()
        with pytest.raises(CapacityError):
            cache.access(OpKind.READ, 3, None)

    def test_repeated_access_remaps_leaf(self):
        cache = make_cache()
        cache.insert(9, b"\x00" * 16)
        leaves = set()
        for _ in range(20):
            cache.access(OpKind.READ, 9, None)
            leaves.add(cache.position_map.get(9))
        assert len(leaves) > 3  # fresh uniform leaf per access

    def test_dummy_access_touches_tree_only(self):
        cache = make_cache()
        times = cache.dummy_access()
        assert times.mem_us > 0
        assert times.io_us == 0

    def test_many_blocks_round_trip(self):
        cache = make_cache(budget=512)
        payloads = {addr: bytes([addr % 256]) * 16 for addr in range(100)}
        for addr, payload in payloads.items():
            cache.insert(addr, payload)
        for addr, payload in payloads.items():
            got, _ = cache.access(OpKind.READ, addr, None)
            assert got == payload


class TestEvictAll:
    def test_returns_every_real_block(self):
        cache = make_cache(budget=512)
        inserted = {}
        for addr in range(80):
            payload = bytes([addr % 256]) * 16
            cache.insert(addr, payload)
            inserted[addr] = payload
        # Touch some so part of the set sits in the tree, part in stash.
        for addr in range(0, 80, 7):
            cache.access(OpKind.READ, addr, None)
        blocks, times, moves = cache.evict_all()
        assert dict(blocks) == inserted
        assert times.mem_us > 0
        assert moves >= cache.slot_capacity  # charged for the full buffer

    def test_tree_empty_afterwards(self):
        cache = make_cache()
        cache.insert(1, b"\x00" * 16)
        cache.evict_all()
        assert cache.real_blocks == 0
        assert not cache.contains(1)
        assert len(cache.stash) == 0

    def test_eviction_order_not_insertion_order(self):
        cache = make_cache(budget=512)
        for addr in range(60):
            cache.insert(addr, b"\x00" * 16)
        blocks, _, _ = cache.evict_all()
        assert [addr for addr, _ in blocks] != list(range(60))

    def test_reusable_after_eviction(self):
        cache = make_cache()
        cache.insert(1, b"first" + b"\x00" * 11)
        cache.evict_all()
        cache.insert(1, b"second" + b"\x00" * 10)
        payload, _ = cache.access(OpKind.READ, 1, None)
        assert payload.rstrip(b"\x00") == b"second"
