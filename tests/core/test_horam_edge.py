"""HybridORAM edge-case tests: odd geometries, workload extremes."""

import pytest

from repro.core.horam import build_horam
from repro.crypto.random import DeterministicRandom
from repro.oram.base import Request
from repro.sim.engine import SimulationEngine
from repro.workload.generators import uniform, zipfian


class TestOddGeometries:
    def test_non_power_of_two_dataset(self):
        oram = build_horam(n_blocks=1000, mem_tree_blocks=100, seed=1)
        oram.write(999, b"last")
        assert oram.read(999).rstrip(b"\x00") == b"last"
        assert oram.read(0) is not None

    def test_bucket_size_two(self):
        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=1, bucket_size=2)
        rng = DeterministicRandom(2)
        SimulationEngine(oram, verify=True).run(list(uniform(256, 150, rng)))

    def test_bucket_size_six(self):
        oram = build_horam(n_blocks=256, mem_tree_blocks=96, seed=1, bucket_size=6)
        rng = DeterministicRandom(2)
        SimulationEngine(oram, verify=True).run(list(uniform(256, 150, rng)))

    def test_tiny_memory(self):
        # Just two buckets of cache: every period is 7 loads long.
        oram = build_horam(n_blocks=128, mem_tree_blocks=12, seed=1)
        rng = DeterministicRandom(3)
        metrics = SimulationEngine(oram, verify=True).run(list(uniform(128, 80, rng)))
        assert metrics.shuffle_count > 3

    def test_large_payload(self):
        oram = build_horam(
            n_blocks=128, mem_tree_blocks=32, seed=1, payload_bytes=256
        )
        blob = bytes(range(256))
        oram.write(5, blob)
        assert oram.read(5) == blob


class TestWorkloadExtremes:
    def test_uniform_worst_case(self):
        # No locality: hit rate collapses, dummies pad the hit slots, the
        # protocol must still be correct and make progress.
        oram = build_horam(n_blocks=512, mem_tree_blocks=64, seed=4)
        rng = DeterministicRandom(5)
        metrics = SimulationEngine(oram, verify=True).run(list(uniform(512, 300, rng)))
        assert metrics.requests_served == 300
        assert metrics.dummy_hit_ratio > 0.3

    def test_zipfian_high_skew(self):
        oram = build_horam(n_blocks=512, mem_tree_blocks=128, seed=4)
        rng = DeterministicRandom(6)
        metrics = SimulationEngine(oram, verify=True).run(
            list(zipfian(512, 500, rng, theta=1.2))
        )
        # Heavy skew caches well: far fewer loads than requests.
        assert metrics.io_reads < 300

    def test_single_address_hammer(self):
        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=4)
        for _ in range(50):
            oram.submit(Request.read(7))
        retired = oram.drain()
        assert len(retired) == 50
        assert len({e.result for e in retired}) == 1

    def test_write_only_stream(self):
        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=4)
        for i in range(60):
            oram.submit(Request.write(i % 40, b"w%04d" % i))
        oram.drain()
        # Last writer wins per address: 0..19 were overwritten by the
        # second lap (i = 40..59), 20..39 keep their first write.
        assert oram.read(0).rstrip(b"\x00") == b"w0040"
        assert oram.read(19).rstrip(b"\x00") == b"w0059"
        assert oram.read(39).rstrip(b"\x00") == b"w0039"

    def test_interleaved_sync_and_batch(self):
        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=4)
        oram.write(1, b"sync")
        oram.submit(Request.read(1))
        entry = oram.submit(Request.write(2, b"batch"))
        oram.drain()
        assert oram.read(2).rstrip(b"\x00") == b"batch"
        assert entry.result.rstrip(b"\x00") == b"batch"


class TestPeriodBoundaries:
    def test_request_straddling_shuffle(self):
        oram = build_horam(n_blocks=256, mem_tree_blocks=32, seed=4)
        # Submit enough distinct cold requests that the ROB still holds
        # unserved entries when the period ends mid-drain.
        for addr in range(100):
            oram.submit(Request.read(addr))
        retired = oram.drain()
        assert len(retired) == 100
        assert oram.metrics.shuffle_count >= 1
        assert oram.metrics.extra.get("ready_demotions", 0) >= 0

    def test_state_consistent_across_many_periods(self):
        oram = build_horam(n_blocks=256, mem_tree_blocks=32, seed=4)
        oram.write(3, b"sticky")
        rng = DeterministicRandom(8)
        SimulationEngine(oram).run(list(uniform(256, 400, rng)))
        assert oram.metrics.shuffle_count >= 5
        assert oram.read(3).rstrip(b"\x00") == b"sticky"
        # Conservation: every block is either in storage or in the cache.
        cached = oram.cache.real_blocks
        resident = oram.storage.resident_blocks()
        assert cached + resident == oram.n_blocks