"""Analytical model tests against the paper's own numbers."""

import pytest

from repro.core import analysis
from repro.storage.device import hdd_paper


class TestEquation51:
    def test_paper_average_c(self):
        stages = [(1, 0.2), (3, 0.13), (5, 0.67)]
        assert analysis.average_c(stages) == pytest.approx(3.94, abs=0.01)

    def test_normalizes(self):
        assert analysis.average_c([(2, 2.0), (4, 2.0)]) == pytest.approx(3.0)

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            analysis.average_c([(1, 0.0)])


class TestEquation52:
    def test_paper_storage_levels(self):
        # 1 GB data, 128 MB memory: log2(2N/n) = log2(16) = 4.
        assert analysis.storage_levels(1 << 20, 1 << 17) == pytest.approx(4.0)

    def test_memory_covers_everything(self):
        assert analysis.storage_levels(1024, 4096) == 0.0


class TestEquation53And54:
    def test_path_io_blocks(self):
        reads, writes = analysis.path_oram_io_blocks(1 << 20, 1 << 17, 4)
        assert reads == pytest.approx(16.0)  # 16 KB at 1 KB blocks
        assert writes == pytest.approx(16.0)

    def test_horam_io_blocks_paper_values(self):
        # Table 5-1: 4.5 KB reads + 4 KB writes per request at c=4.
        reads, writes = analysis.horam_io_blocks(1 << 20, 1 << 17, 4)
        assert reads == pytest.approx(4.5)
        assert writes == pytest.approx(4.0)

    def test_requests_per_period_equation_55(self):
        assert analysis.requests_per_period(1 << 17, 4) == 262144


class TestTable51:
    def test_paper_row_values(self):
        horam, path = analysis.table5_1()
        assert horam.requests_per_period == 262144
        assert horam.avg_read_kb == pytest.approx(4.5)
        assert horam.avg_write_kb == pytest.approx(4.0)
        assert path.avg_read_kb == pytest.approx(16.0)
        assert path.avg_write_kb == pytest.approx(16.0)
        assert horam.shuffle_read_bytes == (1 << 30) - (1 << 27)  # 0.875 GB
        assert horam.shuffle_write_bytes == 1 << 30

    def test_storage_footprint_smaller_for_horam(self):
        horam, path = analysis.table5_1()
        assert horam.storage_bytes < path.storage_bytes


class TestGainCurves:
    def test_gain_increases_with_c(self):
        gains = [analysis.theoretical_gain(8, c) for c in (1, 2, 4, 8)]
        assert gains == sorted(gains)

    def test_gain_decreases_with_ratio_at_fixed_c(self):
        gains = [analysis.theoretical_gain(r, 4) for r in (2, 8, 32)]
        assert gains[0] > gains[1] > gains[2]

    def test_peak_band_matches_paper(self):
        # "The best performance is 12 times or 16 times faster."
        series = analysis.figure5_1_series()
        peak = max(g for c in series for _, g in series[c])
        assert 10 < peak < 20

    def test_rejects_ratio_below_one(self):
        with pytest.raises(ValueError):
            analysis.theoretical_gain(1.0, 4)

    def test_ideal_no_shuffle_gain(self):
        # Table 5-1 configuration: the paper quotes 32x.
        assert analysis.ideal_gain_no_shuffle(1 << 20, 1 << 17) == pytest.approx(32.0)


class TestDeviceAwarePrediction:
    def test_prediction_in_paper_band(self):
        # With the paper-calibrated HDD the full-size Table 5-4 speedup
        # prediction should land in the right order of magnitude.
        speedup = analysis.predicted_speedup(
            n_total=1 << 20, n_mem=1 << 17, c=3.94, device=hdd_paper()
        )
        assert 5 < speedup < 40

    def test_no_shuffle_prediction_larger(self):
        with_shuffle = analysis.predicted_speedup(
            n_total=1 << 20, n_mem=1 << 17, c=3.94, device=hdd_paper()
        )
        without = analysis.predicted_speedup(
            n_total=1 << 20,
            n_mem=1 << 17,
            c=3.94,
            device=hdd_paper(),
            include_shuffle=False,
        )
        assert without > with_shuffle
