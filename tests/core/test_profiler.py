"""Shuffle-ratio profiler tests (Section 5.3.1's "system profiling")."""

import pytest

from repro.core.config import HORAMConfig
from repro.core.profiler import profile_shuffle_ratio
from repro.crypto.random import DeterministicRandom
from repro.workload.generators import hotspot


@pytest.fixture(scope="module")
def sweep():
    config = HORAMConfig(n_blocks=1024, mem_tree_blocks=256, seed=4)
    rng = DeterministicRandom(6)
    sample = list(hotspot(1024, 1500, rng, hot_blocks=80, hot_probability=0.6))
    return profile_shuffle_ratio(config, sample, ratios=(1, 2, 4))


class TestProfiler:
    def test_profiles_every_candidate(self, sweep):
        assert sorted(p.ratio for p in sweep.profiles) == [1, 2, 4]

    def test_best_is_actual_minimum(self, sweep):
        best = sweep.profile_for(sweep.best_ratio)
        assert all(best.total_time_us <= p.total_time_us for p in sweep.profiles)

    def test_partial_ratios_append_blocks(self, sweep):
        assert sweep.profile_for(1).appended_blocks == 0
        assert sweep.profile_for(4).appended_blocks > 0

    def test_sample_crossed_periods(self, sweep):
        # A profile that never shuffles is not a useful profile.
        assert all(p.shuffles >= 1 for p in sweep.profiles)

    def test_profile_for_unknown_ratio(self, sweep):
        with pytest.raises(KeyError):
            sweep.profile_for(99)

    def test_validation(self):
        config = HORAMConfig(n_blocks=256, mem_tree_blocks=64)
        with pytest.raises(ValueError):
            profile_shuffle_ratio(config, [], ratios=(1,))
        with pytest.raises(ValueError):
            profile_shuffle_ratio(config, [object()], ratios=())

    def test_deterministic(self):
        config = HORAMConfig(n_blocks=512, mem_tree_blocks=128, seed=1)
        rng = DeterministicRandom(2)
        sample = list(hotspot(512, 600, rng, hot_blocks=40))
        a = profile_shuffle_ratio(config, sample, ratios=(1, 2))
        b = profile_shuffle_ratio(config, sample, ratios=(1, 2))
        assert a.best_ratio == b.best_ratio
        assert [p.total_time_us for p in a.profiles] == [
            p.total_time_us for p in b.profiles
        ]