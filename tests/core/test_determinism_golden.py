"""Golden determinism guard for the batched hot-path engine.

The batched fast path (vectorized record crypto, bulk store I/O,
incremental shuffle bookkeeping) must be *observationally identical* to
the original single-record implementation: same seed -> same served_log,
same Metrics, same bus trace.  The GOLDEN fingerprints below were
captured on the pre-batching tree (the parent of the PR that introduced
the batch APIs), so matching them proves the old single-record path and
the new batch path produce bit-identical simulated behavior -- and pins
every future refactor to the same contract.

If one of these tests fails after an intentional behavioral change (a
protocol fix, a new timing model), re-derive the fingerprint with the
``fingerprint`` helper below and document why it moved.
"""

from __future__ import annotations

import hashlib

from repro.core.horam import HybridORAM, build_horam
from repro.core.sharding import ShardedHORAM, build_sharded_horam
from repro.crypto.random import DeterministicRandom
from repro.oram.factory import build_baseline
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import Metrics
from repro.workload.generators import hotspot

#: Captured on the pre-batching tree; see module docstring.
GOLDEN = {
    "full_shuffle": "c72c6471846deb7140404e1eb25bb451",
    "partial_shuffle": "11183473162ce57e9a4f9e3d07beb3d9",
}

#: Captured when the kernel protocols landed: pins the succinct
#: hierarchical and BIOS backends the way GOLDEN pins H-ORAM, so kernel
#: refactors cannot silently change what any registered protocol serves.
GOLDEN_KERNEL = {
    "succinct": "ae87bf512baf142580a454d42943ce29",
    "bios": "c188daeb78493dafc8d27127844bf313",
}

#: Captured on the tree that introduced the conformance harness (the
#: first point the shard layer exposed per-shard traces); pins the
#: sharded serving layer -- routing, lockstep padding, cross-shard
#: retirement -- the way GOLDEN pins the single-instance engine.
GOLDEN_SHARDED = {
    2: "34d7459da1ecde2bed7ed7d84e6fea1c",
    4: "fba55dfdaa07c4e4dd74147dc533b2b3",
}


def fingerprint(oram: HybridORAM, metrics: Metrics) -> str:
    """Digest of everything observable: served log, metrics, bus trace."""
    h = hashlib.blake2b(digest_size=16)
    for addr, cycle in oram.served_log:
        h.update(f"s:{addr}:{cycle};".encode())
    md = metrics.to_dict()
    for key in sorted(md):
        if key == "extra":
            continue
        h.update(f"m:{key}={md[key]!r};".encode())
    for key in sorted(md["extra"]):
        h.update(f"x:{key}={md['extra'][key]!r};".encode())
    for e in oram.hierarchy.trace.events:
        h.update(f"t:{e.op}:{e.tier}:{e.slot}:{e.size}:{e.time_us!r}:{e.label};".encode())
    return h.hexdigest()


def run_case(n_blocks, mem_tree_blocks, requests, ratio=1, write_ratio=0.25):
    oram = build_horam(
        n_blocks=n_blocks,
        mem_tree_blocks=mem_tree_blocks,
        seed=42,
        trace=True,
        shuffle_period_ratio=ratio,
    )
    stream = list(
        hotspot(
            n_blocks,
            requests,
            DeterministicRandom(7),
            hot_blocks=max(16, oram.period_capacity // 3),
            write_ratio=write_ratio,
        )
    )
    metrics = SimulationEngine(oram, verify=True).run(stream)
    return fingerprint(oram, metrics)


def run_kernel_case(protocol, n_blocks=512, mem=128, requests=500, write_ratio=0.25):
    oram = build_baseline(
        protocol,
        n_blocks,
        memory_blocks=mem,
        seed=42,
        trace=True,
    )
    stream = list(
        hotspot(
            n_blocks,
            requests,
            DeterministicRandom(7),
            hot_blocks=max(16, oram.period_capacity // 3),
            write_ratio=write_ratio,
        )
    )
    metrics = SimulationEngine(oram, verify=True).run(stream)
    return fingerprint(oram, metrics)


def sharded_fingerprint(sharded: ShardedHORAM, metrics: Metrics) -> str:
    """Digest of the fleet's observables: per-shard logs, metrics, traces."""
    h = hashlib.blake2b(digest_size=16)
    for shard_index, addr, cycle in sharded.served_log:
        h.update(f"s{shard_index}:{addr}:{cycle};".encode())
    md = metrics.to_dict()
    for key in sorted(md):
        if key == "extra":
            continue
        h.update(f"m:{key}={md[key]!r};".encode())
    for key in sorted(md["extra"]):
        h.update(f"x:{key}={md['extra'][key]!r};".encode())
    for shard_index, shard in enumerate(sharded.shards):
        for e in shard.hierarchy.trace.events:
            h.update(
                f"t{shard_index}:{e.op}:{e.tier}:{e.slot}:{e.size}:{e.time_us!r}:{e.label};".encode()
            )
    return h.hexdigest()


def run_sharded_case(n_shards, n_blocks=1024, mem=128, requests=400):
    sharded = build_sharded_horam(
        n_blocks=n_blocks,
        mem_tree_blocks=mem,
        n_shards=n_shards,
        seed=42,
        trace=True,
    )
    stream = list(
        hotspot(
            n_blocks,
            requests,
            DeterministicRandom(7),
            hot_blocks=48,
            write_ratio=0.25,
        )
    )
    metrics = SimulationEngine(sharded, verify=True).run(stream)
    return sharded_fingerprint(sharded, metrics)


class TestGoldenFingerprints:
    def test_full_shuffle_matches_prebatch_engine(self):
        """Seeded full-shuffle run is bit-identical to the single-record path."""
        assert run_case(512, 128, 600) == GOLDEN["full_shuffle"]

    def test_partial_shuffle_matches_prebatch_engine(self):
        """Ratio-4 partial shuffle (overflow appends) is bit-identical too."""
        assert run_case(1024, 128, 900, ratio=4) == GOLDEN["partial_shuffle"]

    def test_repeat_runs_are_identical(self):
        """Two fresh instances on the same seed produce the same fingerprint."""
        assert run_case(512, 128, 300) == run_case(512, 128, 300)


class TestGoldenKernelFingerprints:
    def test_succinct_matches_golden(self):
        """The single-round-trip hierarchy is pinned on the shared kernel."""
        assert run_kernel_case("succinct") == GOLDEN_KERNEL["succinct"]

    def test_bios_matches_golden(self):
        assert run_kernel_case("bios") == GOLDEN_KERNEL["bios"]

    def test_repeat_kernel_runs_are_identical(self):
        assert run_kernel_case("succinct", requests=200) == run_kernel_case(
            "succinct", requests=200
        )


class TestGoldenShardedFingerprints:
    def test_two_shards_match_golden(self):
        """Seeded 2-shard run is pinned: refactors of the shard layer must
        preserve routing, lockstep padding and retirement bit-for-bit."""
        assert run_sharded_case(2) == GOLDEN_SHARDED[2]

    def test_four_shards_match_golden(self):
        assert run_sharded_case(4) == GOLDEN_SHARDED[4]

    def test_repeat_sharded_runs_are_identical(self):
        assert run_sharded_case(2, requests=150) == run_sharded_case(2, requests=150)
