"""Checkpoint/restore across the protocol zoo, including the acceptance
criterion: a 4-shard parallel fleet crashed mid-workload and restored
from its checkpoint is bit-identical to the uninterrupted run."""

import multiprocessing

import pytest

from repro.core.checkpoint import (
    CheckpointError,
    recover,
    restore_stack,
    save_checkpoint,
    snapshot_stack,
)
from repro.core.horam import build_horam
from repro.core.sharding import build_sharded_horam
from repro.crypto.random import DeterministicRandom
from repro.oram.base import OpKind, Request
from repro.oram.factory import build_baseline
from repro.storage.faults import CrashFault, FaultPlan
from repro.workload.generators import hotspot


def workload(n_blocks=256, count=90, seed="ckpt", write_ratio=0.3):
    rng = DeterministicRandom(seed)
    return list(hotspot(n_blocks, count, rng, hot_blocks=20, write_ratio=write_ratio))


def drive(protocol, requests):
    results = []
    for request in requests:
        entry = protocol.submit(request)
        protocol.drain()
        results.append(entry.result)
    return results


def drive_sync(protocol, requests):
    results = []
    for request in requests:
        if request.op is OpKind.READ:
            results.append(protocol.read(request.addr))
        else:
            protocol.write(request.addr, request.data)
            results.append(None)
    return results


def observables(protocol):
    return (
        list(getattr(protocol, "served_log", [])),
        protocol.metrics.to_dict(),
        protocol.hierarchy.clock.now_us,
    )


class TestHybridCheckpoint:
    def test_round_trip_is_bit_identical(self, tmp_path):
        requests = workload()
        golden = build_horam(n_blocks=256, mem_tree_blocks=64, seed=3)
        golden_results = drive(golden, requests)

        victim = build_horam(n_blocks=256, mem_tree_blocks=64, seed=3)
        head = drive(victim, requests[:40])
        save_checkpoint(victim, tmp_path / "ckpt")
        drive(victim, requests[40:60])  # post-checkpoint divergence

        restored = recover(tmp_path / "ckpt")
        tail = drive(restored, requests[40:])
        assert head + tail == golden_results
        assert observables(restored) == observables(golden)
        assert (
            restored.hierarchy.storage.export_data()
            == golden.hierarchy.storage.export_data()
        )

    def test_snapshot_keeps_pending_rob_entries(self, tmp_path):
        """A single instance may checkpoint with requests still in flight."""
        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=3)
        for request in workload(count=5):
            oram.submit(request)
        oram.step()
        save_checkpoint(oram, tmp_path / "ckpt")
        restored = recover(tmp_path / "ckpt")
        assert restored.has_work()
        original = oram.drain()
        recovered = restored.drain()
        assert [e.result for e in recovered] == [e.result for e in original]

    def test_trace_events_survive_restore(self, tmp_path):
        oram = build_horam(n_blocks=256, mem_tree_blocks=64, seed=3, trace=True)
        drive(oram, workload(count=10))
        save_checkpoint(oram, tmp_path / "ckpt")
        restored = recover(tmp_path / "ckpt")
        assert restored.hierarchy.trace.events == oram.hierarchy.trace.events


class TestShardedCheckpoint:
    def test_serial_fleet_round_trip(self, tmp_path):
        requests = workload(n_blocks=512, count=80)
        golden = build_sharded_horam(n_blocks=512, mem_tree_blocks=128, n_shards=4, seed=5)
        golden_results = drive(golden, requests)

        victim = build_sharded_horam(n_blocks=512, mem_tree_blocks=128, n_shards=4, seed=5)
        head = drive(victim, requests[:30])
        save_checkpoint(victim, tmp_path / "ckpt")
        restored = recover(tmp_path / "ckpt")
        tail = drive(restored, requests[30:])
        assert head + tail == golden_results
        assert observables(restored) == observables(golden)

    def test_snapshot_requires_quiesced_fleet(self):
        fleet = build_sharded_horam(n_blocks=512, mem_tree_blocks=128, n_shards=2, seed=5)
        fleet.submit(Request.read(1))
        with pytest.raises(CheckpointError, match="quiescent"):
            fleet.snapshot()
        fleet.drain()
        fleet.snapshot()  # quiesced again: fine

    def test_parallel_crash_recovery_acceptance(self, tmp_path):
        """ISSUE 5 acceptance: ShardedHORAM(4 shards, parallel executor)
        crashed mid-workload and restored from its checkpoint produces a
        served log, final logical state and metrics bit-identical to the
        uninterrupted run."""
        requests = workload(n_blocks=1024, count=80)

        golden = build_sharded_horam(
            n_blocks=1024, mem_tree_blocks=256, n_shards=4, seed=9
        )
        golden_results = drive(golden, requests)

        with build_sharded_horam(
            n_blocks=1024, mem_tree_blocks=256, n_shards=4, seed=9, executor="parallel"
        ) as victim:
            head = drive(victim, requests[:35])
            save_checkpoint(victim, tmp_path / "ckpt")
            victim.executor.install_fault_plan(FaultPlan(crash_at_op=20))
            with pytest.raises(CrashFault):
                drive(victim, requests[35:])

        restored = recover(tmp_path / "ckpt")
        try:
            tail = drive(restored, requests[35:])
            assert head + tail == golden_results
            # Bit-identical served log, metrics and fleet clock.
            assert list(restored.served_log) == list(golden.served_log)
            assert restored.metrics.to_dict() == golden.metrics.to_dict()
            assert [s.metrics.to_dict() for s in restored.shards] == [
                s.metrics.to_dict() for s in golden.shards
            ]
            assert restored.hierarchy.clock.now_us == golden.hierarchy.clock.now_us
            # Final logical state across every written address.
            written = {
                r.addr: r.data for r in requests if r.op is OpKind.WRITE
            }
            for addr in sorted(written):
                assert restored.read(addr) == golden.read(addr)
        finally:
            restored.close()

    def test_restored_parallel_fleet_is_usable_and_closable(self, tmp_path):
        requests = workload(n_blocks=512, count=30)
        before = set(multiprocessing.active_children())
        with build_sharded_horam(
            n_blocks=512, mem_tree_blocks=128, n_shards=2, seed=5, executor="parallel"
        ) as fleet:
            drive(fleet, requests)
            save_checkpoint(fleet, tmp_path / "ckpt")
        restored = recover(tmp_path / "ckpt")
        restored.close()
        leaked = set(multiprocessing.active_children()) - before
        assert not leaked


class TestBaselineCheckpoint:
    @pytest.mark.parametrize("kind", ["plain", "path", "sqrt", "partition"])
    def test_round_trip(self, kind, tmp_path):
        requests = workload(n_blocks=128, count=60)
        kwargs = {"memory_blocks": 32} if kind == "path" else {}
        golden = build_baseline(kind, 128, seed=2, **kwargs)
        golden_results = drive_sync(golden, requests)

        victim = build_baseline(kind, 128, seed=2, **kwargs)
        head = drive_sync(victim, requests[:25])
        save_checkpoint(victim, tmp_path / "ckpt")
        drive_sync(victim, requests[25:40])

        restored = recover(tmp_path / "ckpt")
        tail = drive_sync(restored, requests[25:])
        assert head + tail == golden_results
        assert restored.metrics.to_dict() == golden.metrics.to_dict()
        assert restored.hierarchy.clock.now_us == golden.hierarchy.clock.now_us
        assert (
            restored.hierarchy.storage.export_data()
            == golden.hierarchy.storage.export_data()
        )

    def test_hand_built_protocol_is_rejected(self):
        from repro.oram.insecure import PlainStore
        from repro.crypto.ctr import StreamCipher
        from repro.oram.base import BlockCodec
        from repro.storage.backend import BlockStore
        from repro.storage.device import hdd_paper
        from repro.sim.clock import SimClock

        codec = BlockCodec(16, StreamCipher(b"k"))
        store = BlockStore(
            name="s", tier="storage", slots=8, slot_bytes=codec.slot_bytes,
            device=hdd_paper(),
        )
        plain = PlainStore(n_blocks=8, codec=codec, storage_store=store, clock=SimClock())
        with pytest.raises(CheckpointError, match="factory"):
            snapshot_stack(plain)

    def test_unknown_kind_rejected(self):
        from repro.core.checkpoint import Checkpoint

        with pytest.raises(CheckpointError, match="unknown checkpoint kind"):
            restore_stack(Checkpoint(kind="mystery", state={}))
