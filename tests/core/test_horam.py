"""HybridORAM end-to-end protocol tests."""

import pytest

from repro.core.horam import build_horam
from repro.core.rob import EntryState
from repro.crypto.random import DeterministicRandom
from repro.oram.base import ORAMError, Request, initial_payload
from repro.sim.engine import SimulationEngine
from repro.workload.generators import hotspot


class TestSynchronousAPI:
    def test_read_initial(self, small_horam):
        got = small_horam.read(5)
        assert got == small_horam.codec.pad(initial_payload(5))

    def test_write_then_read(self, small_horam):
        small_horam.write(5, b"hello-horam")
        assert small_horam.read(5).rstrip(b"\x00") == b"hello-horam"

    def test_bounds(self, small_horam):
        with pytest.raises(ORAMError):
            small_horam.read(small_horam.n_blocks)


class TestBatchAPI:
    def test_submit_drain_preserves_order(self, small_horam):
        entries = [small_horam.submit(Request.read(a)) for a in (3, 1, 4, 1, 5)]
        retired = small_horam.drain()
        assert [e.addr for e in retired] == [3, 1, 4, 1, 5]
        assert all(e.state is EntryState.SERVED for e in entries)

    def test_read_after_write_same_batch(self, small_horam):
        small_horam.submit(Request.write(9, b"batched"))
        read_entry = small_horam.submit(Request.read(9))
        small_horam.drain()
        assert read_entry.result.rstrip(b"\x00") == b"batched"

    def test_duplicate_reads_served(self, small_horam):
        entries = [small_horam.submit(Request.read(2)) for _ in range(5)]
        small_horam.drain()
        expected = small_horam.codec.pad(initial_payload(2))
        assert all(e.result == expected for e in entries)

    def test_results_correct_under_load(self, small_horam):
        rng = DeterministicRandom(17)
        requests = list(
            hotspot(small_horam.n_blocks, 600, rng, hot_blocks=40, write_ratio=0.3)
        )
        SimulationEngine(small_horam, verify=True).run(requests)


class TestCycleMechanics:
    def test_every_cycle_issues_one_load(self, small_horam):
        for addr in range(20):
            small_horam.submit(Request.read(addr))
        small_horam.drain()
        m = small_horam.metrics
        assert m.scheduled_misses == m.cycles
        # Storage single reads == cycles (real misses + dummy loads).
        assert m.cycles == small_horam.scheduler.cycles_planned

    def test_period_triggers_shuffle(self, small_horam):
        period = small_horam.period_capacity
        rng = DeterministicRandom(2)
        requests = list(hotspot(small_horam.n_blocks, 4 * period, rng, hot_blocks=20))
        SimulationEngine(small_horam).run(requests)
        assert small_horam.metrics.shuffle_count >= 1
        assert small_horam.period_index == small_horam.metrics.shuffle_count

    def test_tree_never_exceeds_capacity(self, small_horam):
        rng = DeterministicRandom(3)
        requests = list(hotspot(small_horam.n_blocks, 500, rng, hot_blocks=30))
        SimulationEngine(small_horam).run(requests)
        assert (
            small_horam.metrics.tree_real_blocks_peak
            <= small_horam.period_capacity
        )

    def test_c_follows_stage_schedule(self, small_horam):
        # At period start c=1 (the cold stage).
        assert small_horam.current_c == 1

    def test_force_shuffle(self, small_horam):
        small_horam.read(1)
        small_horam.force_shuffle()
        assert small_horam.metrics.shuffle_count >= 1
        # Still functional after an early shuffle.
        assert small_horam.read(1) == small_horam.codec.pad(initial_payload(1))


class TestTimingComposition:
    def test_overlap_beats_serial(self):
        rng = DeterministicRandom(4)
        requests = list(hotspot(512, 300, rng, hot_blocks=30))
        over = build_horam(n_blocks=512, mem_tree_blocks=128, seed=1, overlap_io=True)
        m_over = SimulationEngine(over).run(list(requests))
        serial = build_horam(n_blocks=512, mem_tree_blocks=128, seed=1, overlap_io=False)
        m_serial = SimulationEngine(serial).run(list(requests))
        assert m_over.total_time_us < m_serial.total_time_us

    def test_shuffle_time_included_in_total(self, small_horam):
        rng = DeterministicRandom(5)
        requests = list(
            hotspot(small_horam.n_blocks, 4 * small_horam.period_capacity, rng, hot_blocks=20)
        )
        m = SimulationEngine(small_horam).run(requests)
        assert m.shuffle_count >= 1
        assert m.total_time_us > m.shuffle_time_us > 0
        assert m.access_time_us > 0


class TestSchedulerEffect:
    def test_hits_reduce_loads(self):
        # A hot-set workload must need far fewer loads than requests.
        oram = build_horam(n_blocks=1024, mem_tree_blocks=256, seed=2)
        rng = DeterministicRandom(6)
        requests = list(hotspot(1024, 1000, rng, hot_blocks=30, hot_probability=0.95))
        m = SimulationEngine(oram).run(requests)
        assert m.io_reads < len(requests) / 1.5

    def test_prefetch_window_reduces_dummies(self):
        rng = DeterministicRandom(7)
        requests = list(hotspot(1024, 800, rng, hot_blocks=40))
        narrow = build_horam(
            n_blocks=1024, mem_tree_blocks=256, seed=3, prefetch_window=2
        )
        m_narrow = SimulationEngine(narrow).run(list(requests))
        wide = build_horam(
            n_blocks=1024, mem_tree_blocks=256, seed=3, prefetch_window=30
        )
        m_wide = SimulationEngine(wide).run(list(requests))
        assert m_wide.dummy_hits <= m_narrow.dummy_hits

    def test_dummy_miss_prefetch_counted(self, small_horam):
        # All-cached workload: cycles still load (dummy misses) and those
        # loads prefetch real blocks.
        for _ in range(3):
            small_horam.submit(Request.read(1))
        small_horam.drain()
        m = small_horam.metrics
        assert m.dummy_misses > 0
        assert m.prefetched_hits > 0


class TestConfigPlumbing:
    def test_codec_slot_size_checked(self):
        from repro.core.config import HORAMConfig
        from repro.core.horam import HybridORAM
        from repro.crypto.ctr import StreamCipher
        from repro.oram.base import BlockCodec
        from repro.storage.hierarchy import StorageHierarchy

        config = HORAMConfig(n_blocks=256, mem_tree_blocks=64)
        hierarchy = StorageHierarchy(memory_slots=64, storage_slots=300, slot_bytes=99)
        with pytest.raises(ValueError):
            HybridORAM(config, hierarchy, codec=BlockCodec(16, StreamCipher(b"k")))

    def test_deterministic_replay(self):
        rng = DeterministicRandom(8)
        requests = list(hotspot(512, 200, rng, hot_blocks=20))
        runs = []
        for _ in range(2):
            oram = build_horam(n_blocks=512, mem_tree_blocks=128, seed=5)
            m = SimulationEngine(oram).run(list(requests))
            runs.append((m.io_reads, m.cycles, m.total_time_us))
        assert runs[0] == runs[1]
